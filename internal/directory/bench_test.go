package directory

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// Lookup benchmarks for the sharded in-memory directory. The directory
// sits on the discovery path of every stream bootstrap and rank-host
// dial, so lookups must stay cheap as tenants multiply; the single-
// threaded ns/op is gated by TestDirectoryLookupBudget against the
// budget recorded in BENCH_directory.json.

const (
	benchTenants = 64
	benchStreams = 64
)

func benchDir(b *testing.B) (*Mem, []string) {
	b.Helper()
	m := NewMem()
	keys := make([]string, 0, benchTenants*benchStreams)
	for t := 0; t < benchTenants; t++ {
		tenant := fmt.Sprintf("t%02d", t)
		for s := 0; s < benchStreams; s++ {
			k := Qualify(tenant, fmt.Sprintf("stream-%02d", s))
			if err := m.Register(k, "contact://"+k); err != nil {
				b.Fatal(err)
			}
			keys = append(keys, k)
		}
	}
	return m, keys
}

var sinkStr string

func BenchmarkDirectoryLookup(b *testing.B) {
	m, keys := benchDir(b)
	defer m.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := m.Lookup(keys[i%len(keys)])
		if err != nil {
			b.Fatal(err)
		}
		sinkStr = c
	}
}

// BenchmarkDirectoryLookupParallel exercises the lock striping: lookups
// from many goroutines land on different shards and must scale instead
// of convoying on one mutex.
func BenchmarkDirectoryLookupParallel(b *testing.B) {
	m, keys := benchDir(b)
	defer m.Close()
	var next uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := atomic.AddUint64(&next, 1) * 7919 // spread starting points
		for pb.Next() {
			c, err := m.Lookup(keys[i%uint64(len(keys))])
			if err != nil {
				b.Fatal(err)
			}
			sinkStr = c
			i++
		}
	})
}

package directory

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestMemRegisterLookup(t *testing.T) {
	d := NewMem()
	if err := d.Register("gts.particles", "coord:sim:0"); err != nil {
		t.Fatal(err)
	}
	c, err := d.Lookup("gts.particles")
	if err != nil || c != "coord:sim:0" {
		t.Fatalf("Lookup = %q, %v", c, err)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestMemReRegisterReplaces(t *testing.T) {
	d := NewMem()
	d.Register("s", "a")
	if err := d.Register("s", "b"); err != nil {
		t.Fatalf("re-register must replace, got %v", err)
	}
	c, err := d.Lookup("s")
	if err != nil || c != "b" {
		t.Fatalf("Lookup = %q, %v; want replaced contact", c, err)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d after replacement", d.Len())
	}
}

func TestMemReRegisterWakesWaiters(t *testing.T) {
	// A reconfiguring session re-registers its contact; waiters racing the
	// replacement must resolve to *some* valid binding, never block.
	d := NewMem()
	d.Register("s", "old")
	done := make(chan string, 1)
	go func() {
		c, err := d.WaitLookup("s", 5*time.Second)
		if err != nil {
			done <- "ERR:" + err.Error()
			return
		}
		done <- c
	}()
	d.Register("s", "new")
	got := <-done
	if got != "old" && got != "new" {
		t.Fatalf("WaitLookup = %q", got)
	}
}

func TestMemNotFound(t *testing.T) {
	d := NewMem()
	if _, err := d.Lookup("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestMemUnregisterIdempotent(t *testing.T) {
	d := NewMem()
	d.Register("s", "a")
	if err := d.Unregister("s"); err != nil {
		t.Fatal(err)
	}
	if err := d.Unregister("s"); err != nil {
		t.Fatal("second unregister must be a no-op")
	}
	if _, err := d.Lookup("s"); !errors.Is(err, ErrNotFound) {
		t.Fatal("stream must be gone")
	}
	// Re-registration allowed.
	if err := d.Register("s", "b"); err != nil {
		t.Fatal(err)
	}
}

func TestMemWaitLookupBeforeRegister(t *testing.T) {
	// The reader-opens-first case: analytics opens the stream before the
	// simulation creates it.
	d := NewMem()
	var got string
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := d.WaitLookup("s", 5*time.Second)
		if err != nil {
			t.Errorf("WaitLookup: %v", err)
			return
		}
		got = c
	}()
	time.Sleep(10 * time.Millisecond)
	d.Register("s", "contact")
	wg.Wait()
	if got != "contact" {
		t.Fatalf("got %q", got)
	}
}

func TestMemWaitLookupTimeout(t *testing.T) {
	d := NewMem()
	start := time.Now()
	_, err := d.WaitLookup("never", 30*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) < 30*time.Millisecond {
		t.Fatal("returned before timeout")
	}
	// The dead waiter must not break a later registration.
	if err := d.Register("never", "c"); err != nil {
		t.Fatal(err)
	}
}

func TestMemManyWaiters(t *testing.T) {
	d := NewMem()
	const n = 10
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := d.WaitLookup("s", 5*time.Second)
			if err != nil {
				errs <- err
				return
			}
			if c != "x" {
				errs <- errors.New("wrong contact")
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	d.Register("s", "x")
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTCPServerRoundTrip(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewMem())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := &Client{Addr: srv.Addr()}

	if err := cl.Register("s3d.species", "coord:7"); err != nil {
		t.Fatal(err)
	}
	c, err := cl.Lookup("s3d.species")
	if err != nil || c != "coord:7" {
		t.Fatalf("Lookup = %q, %v", c, err)
	}
	if err := cl.Register("s3d.species", "other"); err != nil {
		t.Fatalf("re-register over TCP must replace, got %v", err)
	}
	if c, err := cl.Lookup("s3d.species"); err != nil || c != "other" {
		t.Fatalf("Lookup after replacement = %q, %v", c, err)
	}
	if _, err := cl.Lookup("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing err = %v", err)
	}
	if err := cl.Unregister("s3d.species"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Lookup("s3d.species"); !errors.Is(err, ErrNotFound) {
		t.Fatal("entry should be gone")
	}
}

func TestTCPWait(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewMem())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := &Client{Addr: srv.Addr()}

	done := make(chan string, 1)
	go func() {
		c, err := cl.WaitLookup("late", 3*time.Second)
		if err != nil {
			done <- "ERR:" + err.Error()
			return
		}
		done <- c
	}()
	time.Sleep(20 * time.Millisecond)
	if err := cl.Register("late", "here"); err != nil {
		t.Fatal(err)
	}
	if got := <-done; got != "here" {
		t.Fatalf("WaitLookup over TCP = %q", got)
	}

	if _, err := cl.WaitLookup("never", 20*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestTCPBadRequests(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewMem())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for req, wantErr := range map[string]bool{
		"REG onlyname":  true,
		"GET":           true,
		"BOGUS x":       true,
		"WAIT s notnum": true,
	} {
		cl := &Client{Addr: srv.Addr()}
		_, err := cl.roundTrip(req)
		if (err != nil) != wantErr {
			t.Errorf("request %q: err = %v", req, err)
		}
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewMem())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := &Client{Addr: srv.Addr()}
			name := string(rune('a' + i))
			if err := cl.Register(name, "c"); err != nil {
				t.Errorf("register %s: %v", name, err)
			}
			if _, err := cl.Lookup(name); err != nil {
				t.Errorf("lookup %s: %v", name, err)
			}
		}()
	}
	wg.Wait()
}

// Package directory implements FlexIO's external directory server
// (Section II.C.1): before any data movement, the simulation's elected
// coordinator registers a stream name with its contact information, and
// the analytics' coordinator looks the name up to bootstrap the
// connection. The directory participates only in discovery — never in the
// data path.
//
// Two implementations are provided: Mem, an in-process directory used when
// simulation and analytics share a process (the common case in this
// reproduction), and a TCP Server/Client pair with a line-oriented
// protocol, so the cmd/dirserver binary can serve real multi-process
// deployments.
package directory

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Common errors.
var (
	ErrNotFound  = errors.New("directory: stream not found")
	ErrDuplicate = errors.New("directory: stream already registered")
	ErrTimeout   = errors.New("directory: lookup timed out")
)

// Directory is the discovery API.
type Directory interface {
	// Register binds a stream name to contact information.
	Register(stream, contact string) error
	// Lookup resolves a stream name immediately.
	Lookup(stream string) (string, error)
	// WaitLookup resolves a stream name, waiting up to timeout for it to
	// be registered. This covers readers that open a stream before the
	// writer creates it.
	WaitLookup(stream string, timeout time.Duration) (string, error)
	// Unregister removes a binding.
	Unregister(stream string) error
}

// Mem is an in-process directory. The zero value is not usable; call
// NewMem.
type Mem struct {
	mu      sync.Mutex
	entries map[string]string
	waiters map[string][]chan string
}

// NewMem creates an empty in-process directory.
func NewMem() *Mem {
	return &Mem{
		entries: make(map[string]string),
		waiters: make(map[string][]chan string),
	}
}

// Register binds stream to contact and wakes pending WaitLookups.
func (d *Mem) Register(stream, contact string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.entries[stream]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicate, stream)
	}
	d.entries[stream] = contact
	for _, w := range d.waiters[stream] {
		w <- contact
	}
	delete(d.waiters, stream)
	return nil
}

// Lookup resolves stream or returns ErrNotFound.
func (d *Mem) Lookup(stream string) (string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c, ok := d.entries[stream]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrNotFound, stream)
	}
	return c, nil
}

// WaitLookup resolves stream, blocking up to timeout for registration.
func (d *Mem) WaitLookup(stream string, timeout time.Duration) (string, error) {
	d.mu.Lock()
	if c, ok := d.entries[stream]; ok {
		d.mu.Unlock()
		return c, nil
	}
	ch := make(chan string, 1)
	d.waiters[stream] = append(d.waiters[stream], ch)
	d.mu.Unlock()

	select {
	case c := <-ch:
		return c, nil
	case <-time.After(timeout):
		// Remove our waiter; tolerate a registration racing the timeout.
		d.mu.Lock()
		ws := d.waiters[stream]
		for i, w := range ws {
			if w == ch {
				d.waiters[stream] = append(ws[:i], ws[i+1:]...)
				break
			}
		}
		d.mu.Unlock()
		select {
		case c := <-ch:
			return c, nil
		default:
			return "", fmt.Errorf("%w: %q after %v", ErrTimeout, stream, timeout)
		}
	}
}

// Unregister removes the binding (idempotent).
func (d *Mem) Unregister(stream string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.entries, stream)
	return nil
}

// Len reports the number of registered streams.
func (d *Mem) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}

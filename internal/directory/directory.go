// Package directory implements FlexIO's external directory server
// (Section II.C.1): before any data movement, the simulation's elected
// coordinator registers a stream name with its contact information, and
// the analytics' coordinator looks the name up to bootstrap the
// connection. The directory participates only in discovery — never in the
// data path.
//
// Names live in a tenant/stream namespace (see Qualify): a multi-tenant
// fabric scopes every stream, contact, and lease under the owning
// tenant's id, so two tenants may both run a stream called "gts" without
// colliding. The in-process implementation is lock-striped across
// shards keyed by that namespace, so directory traffic from thousands of
// concurrent sessions does not serialize on one mutex.
//
// Two implementations are provided: Mem, an in-process directory used when
// simulation and analytics share a process (the common case in this
// reproduction), and a TCP Server/Client pair with a line-oriented
// protocol, so the cmd/dirserver binary can serve real multi-process
// deployments.
package directory

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"
)

// Common errors.
var (
	ErrNotFound = errors.New("directory: stream not found")
	// ErrDuplicate is retained for callers that still test for it.
	//
	// Deprecated: Register performs atomic contact replacement and no
	// longer returns this error; a re-registration (e.g. a session
	// reconfiguring its contact after a placement switch) simply wins.
	ErrDuplicate = errors.New("directory: stream already registered")
	ErrTimeout   = errors.New("directory: lookup timed out")
	ErrClosed    = errors.New("directory: closed")
)

// Leaser is the optional lease extension of a Directory: a registration
// carries a time-to-live and vanishes unless its owner heartbeats a
// renewal — how the directory sheds contacts of crashed processes
// without ever being on the data path. Mem and Client implement it.
type Leaser interface {
	// RegisterTTL is Register with a lease: the binding expires ttl from
	// now unless renewed. ttl <= 0 registers without a lease (never
	// expires), matching Register.
	RegisterTTL(stream, contact string, ttl time.Duration) error
	// Renew extends stream's lease to ttl from now (ErrNotFound if the
	// binding is absent or already expired). Renewing with ttl <= 0
	// removes the lease, making the binding permanent.
	Renew(stream string, ttl time.Duration) error
}

// Lister is the optional enumeration extension of a Directory: list
// every live binding under a key prefix. The fleet observability
// collector discovers scrape targets through it — daemons lease their
// metrics endpoints under a dedicated namespace prefix, so the listing
// is always the currently-live fleet. Mem and Client implement it.
type Lister interface {
	// List returns the live bindings whose keys start with prefix
	// (key -> contact); "" lists everything.
	List(prefix string) (map[string]string, error)
}

// Directory is the discovery API.
type Directory interface {
	// Register binds a stream name to contact information. Registering a
	// name that is already bound atomically replaces the contact: lookups
	// before the call see the old contact, lookups after see the new one,
	// and no lookup ever observes the name as absent in between.
	Register(stream, contact string) error
	// Lookup resolves a stream name immediately.
	Lookup(stream string) (string, error)
	// WaitLookup resolves a stream name, waiting up to timeout for it to
	// be registered. This covers readers that open a stream before the
	// writer creates it.
	WaitLookup(stream string, timeout time.Duration) (string, error)
	// Unregister removes a binding.
	Unregister(stream string) error
}

// MemOptions configures the in-process directory. The zero value is
// usable: DefaultShards lock stripes and a 1 ms janitor slack.
type MemOptions struct {
	// Shards is the number of lock stripes the key space is hashed
	// across. More shards cut contention between tenants (each key lives
	// on exactly one shard, and WaitLookup waiters are woken only by
	// changes on their own shard). <= 0 selects DefaultShards.
	Shards int
	// JanitorSlack is added to the earliest lease expiry when arming a
	// shard's purge timer: leases are purged at expiry+slack. It trades
	// purge precision for timer churn under heavy renewal traffic.
	// <= 0 selects 1 ms.
	JanitorSlack time.Duration
}

// DefaultShards is the lock-stripe count of NewMem.
const DefaultShards = 16

// Mem is an in-process directory, lock-striped across shards. The zero
// value is not usable; call NewMem or NewMemOpts.
//
// WaitLookup blocks on the owning shard's condition variable: Register
// broadcasts once per binding change rather than feeding per-waiter
// channels, so an arbitrary number of readers waiting on one stream wake
// with a single O(1) notification — and only waiters sharing the shard
// are woken at all.
type Mem struct {
	opts   MemOptions
	shards []*memShard
}

// memShard is one lock stripe: its own entry map, condition variable,
// and lease-purge timer, so tenant A's lease churn never serializes
// against tenant B's lookups on another shard.
type memShard struct {
	mu      sync.Mutex
	cond    *sync.Cond
	entries map[string]memEntry
	janitor *time.Timer // fires at the earliest lease expiry on this shard
	slack   time.Duration
	closed  bool
}

// memEntry is one binding; a zero expires means no lease.
type memEntry struct {
	contact string
	expires time.Time
}

func (e memEntry) expired(now time.Time) bool {
	return !e.expires.IsZero() && !now.Before(e.expires)
}

// NewMem creates an empty in-process directory with default options.
func NewMem() *Mem { return NewMemOpts(MemOptions{}) }

// NewMemOpts creates an empty in-process directory with the given
// shard count and janitor slack.
func NewMemOpts(opts MemOptions) *Mem {
	if opts.Shards <= 0 {
		opts.Shards = DefaultShards
	}
	if opts.JanitorSlack <= 0 {
		opts.JanitorSlack = time.Millisecond
	}
	d := &Mem{opts: opts, shards: make([]*memShard, opts.Shards)}
	for i := range d.shards {
		sh := &memShard{entries: make(map[string]memEntry), slack: opts.JanitorSlack}
		sh.cond = sync.NewCond(&sh.mu)
		d.shards[i] = sh
	}
	return d
}

// shard maps a qualified key to its lock stripe (FNV-1a over the full
// tenant/stream key).
func (d *Mem) shard(key string) *memShard {
	if len(d.shards) == 1 {
		return d.shards[0]
	}
	h := fnv.New32a()
	h.Write([]byte(key)) //nolint:errcheck // fnv never fails
	return d.shards[h.Sum32()%uint32(len(d.shards))]
}

// ShardCount reports the number of lock stripes.
func (d *Mem) ShardCount() int { return len(d.shards) }

// Register binds stream to contact and wakes pending WaitLookups. A
// stream that is already bound has its contact atomically replaced.
func (d *Mem) Register(stream, contact string) error {
	return d.RegisterTTL(stream, contact, 0)
}

// RegisterTTL implements Leaser: the binding expires ttl from now unless
// renewed (ttl <= 0 never expires).
func (d *Mem) RegisterTTL(stream, contact string, ttl time.Duration) error {
	e := memEntry{contact: contact}
	if ttl > 0 {
		e.expires = time.Now().Add(ttl)
	}
	sh := d.shard(stream)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		return ErrClosed
	}
	sh.entries[stream] = e
	sh.scheduleJanitorLocked()
	sh.cond.Broadcast()
	return nil
}

// Renew implements Leaser: extends the lease to ttl from now.
func (d *Mem) Renew(stream string, ttl time.Duration) error {
	sh := d.shard(stream)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		return ErrClosed
	}
	e, ok := sh.entries[stream]
	if !ok || e.expired(time.Now()) {
		delete(sh.entries, stream)
		return fmt.Errorf("%w: %q (lease expired or never registered)", ErrNotFound, stream)
	}
	if ttl > 0 {
		e.expires = time.Now().Add(ttl)
	} else {
		e.expires = time.Time{}
	}
	sh.entries[stream] = e
	sh.scheduleJanitorLocked()
	return nil
}

// scheduleJanitorLocked (re)arms the shard's purge timer for its
// earliest lease expiry. The janitor broadcast makes expiry observable
// to WaitLookup waiters without polling: they wake, fail to find the
// purged entry, and keep waiting or time out. Caller holds sh.mu.
func (sh *memShard) scheduleJanitorLocked() {
	var next time.Time
	for _, e := range sh.entries {
		if e.expires.IsZero() {
			continue
		}
		if next.IsZero() || e.expires.Before(next) {
			next = e.expires
		}
	}
	if sh.janitor != nil {
		sh.janitor.Stop()
		sh.janitor = nil
	}
	if next.IsZero() || sh.closed {
		return
	}
	sh.janitor = time.AfterFunc(time.Until(next)+sh.slack, func() {
		sh.mu.Lock()
		if !sh.closed {
			sh.purgeLocked(time.Now())
			sh.scheduleJanitorLocked()
			sh.cond.Broadcast()
		}
		sh.mu.Unlock()
	})
}

// purgeLocked drops expired bindings. Caller holds sh.mu.
func (sh *memShard) purgeLocked(now time.Time) {
	for s, e := range sh.entries {
		if e.expired(now) {
			delete(sh.entries, s)
		}
	}
}

// Lookup resolves stream or returns ErrNotFound.
func (d *Mem) Lookup(stream string) (string, error) {
	sh := d.shard(stream)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[stream]
	if !ok || e.expired(time.Now()) {
		return "", fmt.Errorf("%w: %q", ErrNotFound, stream)
	}
	return e.contact, nil
}

// WaitLookup resolves stream, blocking up to timeout for registration.
func (d *Mem) WaitLookup(stream string, timeout time.Duration) (string, error) {
	sh := d.shard(stream)
	deadline := time.Now().Add(timeout)
	// sync.Cond has no timed wait; a timer broadcast bounds the sleep.
	expired := false
	timer := time.AfterFunc(timeout, func() {
		sh.mu.Lock()
		expired = true
		sh.mu.Unlock()
		sh.cond.Broadcast()
	})
	defer timer.Stop()

	sh.mu.Lock()
	defer sh.mu.Unlock()
	for {
		if e, ok := sh.entries[stream]; ok && !e.expired(time.Now()) {
			return e.contact, nil
		}
		if sh.closed {
			return "", fmt.Errorf("%w: %q", ErrClosed, stream)
		}
		if expired || !time.Now().Before(deadline) {
			return "", fmt.Errorf("%w: %q after %v", ErrTimeout, stream, timeout)
		}
		sh.cond.Wait()
	}
}

// Unregister removes the binding (idempotent).
func (d *Mem) Unregister(stream string) error {
	sh := d.shard(stream)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	delete(sh.entries, stream)
	return nil
}

// Len reports the number of live (unexpired) streams across all shards.
func (d *Mem) Len() int {
	now := time.Now()
	total := 0
	for _, sh := range d.shards {
		sh.mu.Lock()
		sh.purgeLocked(now)
		total += len(sh.entries)
		sh.mu.Unlock()
	}
	return total
}

// List returns every live binding whose key starts with prefix (all
// bindings when prefix is ""). The fleet observability collector uses
// this to discover scrape targets: daemons register their metrics
// address under the "obs!" namespace with a lease, so listing that
// prefix yields exactly the live fleet. The snapshot is per-shard
// consistent, not globally atomic — fine for discovery, where a
// concurrently-registering daemon is simply picked up next sweep.
func (d *Mem) List(prefix string) (map[string]string, error) {
	now := time.Now()
	out := make(map[string]string)
	for _, sh := range d.shards {
		sh.mu.Lock()
		sh.purgeLocked(now)
		for key, e := range sh.entries {
			if len(key) >= len(prefix) && key[:len(prefix)] == prefix {
				out[key] = e.contact
			}
		}
		sh.mu.Unlock()
	}
	return out, nil
}

// TenantLen reports the number of live streams registered under one
// tenant's namespace (tenant "" counts unqualified legacy streams).
func (d *Mem) TenantLen(tenant string) int {
	now := time.Now()
	total := 0
	for _, sh := range d.shards {
		sh.mu.Lock()
		sh.purgeLocked(now)
		for key := range sh.entries {
			if t, _ := SplitTenant(key); t == tenant {
				total++
			}
		}
		sh.mu.Unlock()
	}
	return total
}

// Close stops every shard's janitor timer and wakes all pending
// WaitLookup waiters with ErrClosed. Further registrations fail with
// ErrClosed; lookups of surviving entries still resolve (tear-down
// order between a directory and its sessions is not forced). Close is
// idempotent. Without it, a lease janitor armed for a far-future expiry
// would keep its timer (and callback goroutine slot) alive long after a
// test scenario tore the directory down.
func (d *Mem) Close() error {
	for _, sh := range d.shards {
		sh.mu.Lock()
		sh.closed = true
		if sh.janitor != nil {
			sh.janitor.Stop()
			sh.janitor = nil
		}
		sh.cond.Broadcast()
		sh.mu.Unlock()
	}
	return nil
}

// Package directory implements FlexIO's external directory server
// (Section II.C.1): before any data movement, the simulation's elected
// coordinator registers a stream name with its contact information, and
// the analytics' coordinator looks the name up to bootstrap the
// connection. The directory participates only in discovery — never in the
// data path.
//
// Two implementations are provided: Mem, an in-process directory used when
// simulation and analytics share a process (the common case in this
// reproduction), and a TCP Server/Client pair with a line-oriented
// protocol, so the cmd/dirserver binary can serve real multi-process
// deployments.
package directory

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Common errors.
var (
	ErrNotFound = errors.New("directory: stream not found")
	// ErrDuplicate is retained for callers that still test for it.
	//
	// Deprecated: Register performs atomic contact replacement and no
	// longer returns this error; a re-registration (e.g. a session
	// reconfiguring its contact after a placement switch) simply wins.
	ErrDuplicate = errors.New("directory: stream already registered")
	ErrTimeout   = errors.New("directory: lookup timed out")
)

// Leaser is the optional lease extension of a Directory: a registration
// carries a time-to-live and vanishes unless its owner heartbeats a
// renewal — how the directory sheds contacts of crashed processes
// without ever being on the data path. Mem and Client implement it.
type Leaser interface {
	// RegisterTTL is Register with a lease: the binding expires ttl from
	// now unless renewed. ttl <= 0 registers without a lease (never
	// expires), matching Register.
	RegisterTTL(stream, contact string, ttl time.Duration) error
	// Renew extends stream's lease to ttl from now (ErrNotFound if the
	// binding is absent or already expired). Renewing with ttl <= 0
	// removes the lease, making the binding permanent.
	Renew(stream string, ttl time.Duration) error
}

// Directory is the discovery API.
type Directory interface {
	// Register binds a stream name to contact information. Registering a
	// name that is already bound atomically replaces the contact: lookups
	// before the call see the old contact, lookups after see the new one,
	// and no lookup ever observes the name as absent in between.
	Register(stream, contact string) error
	// Lookup resolves a stream name immediately.
	Lookup(stream string) (string, error)
	// WaitLookup resolves a stream name, waiting up to timeout for it to
	// be registered. This covers readers that open a stream before the
	// writer creates it.
	WaitLookup(stream string, timeout time.Duration) (string, error)
	// Unregister removes a binding.
	Unregister(stream string) error
}

// Mem is an in-process directory. The zero value is not usable; call
// NewMem.
//
// WaitLookup blocks on a condition variable: Register broadcasts once per
// binding change rather than feeding per-waiter channels, so an arbitrary
// number of readers waiting on one stream wake with a single O(1)
// notification.
type Mem struct {
	mu      sync.Mutex
	cond    *sync.Cond
	entries map[string]memEntry
	janitor *time.Timer // fires at the earliest lease expiry
}

// memEntry is one binding; a zero expires means no lease.
type memEntry struct {
	contact string
	expires time.Time
}

func (e memEntry) expired(now time.Time) bool {
	return !e.expires.IsZero() && !now.Before(e.expires)
}

// NewMem creates an empty in-process directory.
func NewMem() *Mem {
	d := &Mem{entries: make(map[string]memEntry)}
	d.cond = sync.NewCond(&d.mu)
	return d
}

// Register binds stream to contact and wakes pending WaitLookups. A
// stream that is already bound has its contact atomically replaced.
func (d *Mem) Register(stream, contact string) error {
	return d.RegisterTTL(stream, contact, 0)
}

// RegisterTTL implements Leaser: the binding expires ttl from now unless
// renewed (ttl <= 0 never expires).
func (d *Mem) RegisterTTL(stream, contact string, ttl time.Duration) error {
	e := memEntry{contact: contact}
	if ttl > 0 {
		e.expires = time.Now().Add(ttl)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.entries[stream] = e
	d.scheduleJanitorLocked()
	d.cond.Broadcast()
	return nil
}

// Renew implements Leaser: extends the lease to ttl from now.
func (d *Mem) Renew(stream string, ttl time.Duration) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[stream]
	if !ok || e.expired(time.Now()) {
		delete(d.entries, stream)
		return fmt.Errorf("%w: %q (lease expired or never registered)", ErrNotFound, stream)
	}
	if ttl > 0 {
		e.expires = time.Now().Add(ttl)
	} else {
		e.expires = time.Time{}
	}
	d.entries[stream] = e
	d.scheduleJanitorLocked()
	return nil
}

// scheduleJanitorLocked (re)arms the purge timer for the earliest lease
// expiry. The janitor broadcast makes expiry observable to WaitLookup
// waiters without polling: they wake, fail to find the purged entry, and
// keep waiting or time out. Caller holds d.mu.
func (d *Mem) scheduleJanitorLocked() {
	var next time.Time
	for _, e := range d.entries {
		if e.expires.IsZero() {
			continue
		}
		if next.IsZero() || e.expires.Before(next) {
			next = e.expires
		}
	}
	if d.janitor != nil {
		d.janitor.Stop()
		d.janitor = nil
	}
	if next.IsZero() {
		return
	}
	d.janitor = time.AfterFunc(time.Until(next)+time.Millisecond, func() {
		d.mu.Lock()
		d.purgeLocked(time.Now())
		d.scheduleJanitorLocked()
		d.cond.Broadcast()
		d.mu.Unlock()
	})
}

// purgeLocked drops expired bindings. Caller holds d.mu.
func (d *Mem) purgeLocked(now time.Time) {
	for s, e := range d.entries {
		if e.expired(now) {
			delete(d.entries, s)
		}
	}
}

// Lookup resolves stream or returns ErrNotFound.
func (d *Mem) Lookup(stream string) (string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[stream]
	if !ok || e.expired(time.Now()) {
		return "", fmt.Errorf("%w: %q", ErrNotFound, stream)
	}
	return e.contact, nil
}

// WaitLookup resolves stream, blocking up to timeout for registration.
func (d *Mem) WaitLookup(stream string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	// sync.Cond has no timed wait; a timer broadcast bounds the sleep.
	expired := false
	timer := time.AfterFunc(timeout, func() {
		d.mu.Lock()
		expired = true
		d.mu.Unlock()
		d.cond.Broadcast()
	})
	defer timer.Stop()

	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if e, ok := d.entries[stream]; ok && !e.expired(time.Now()) {
			return e.contact, nil
		}
		if expired || !time.Now().Before(deadline) {
			return "", fmt.Errorf("%w: %q after %v", ErrTimeout, stream, timeout)
		}
		d.cond.Wait()
	}
}

// Unregister removes the binding (idempotent).
func (d *Mem) Unregister(stream string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.entries, stream)
	return nil
}

// Len reports the number of live (unexpired) streams.
func (d *Mem) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.purgeLocked(time.Now())
	return len(d.entries)
}

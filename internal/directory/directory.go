// Package directory implements FlexIO's external directory server
// (Section II.C.1): before any data movement, the simulation's elected
// coordinator registers a stream name with its contact information, and
// the analytics' coordinator looks the name up to bootstrap the
// connection. The directory participates only in discovery — never in the
// data path.
//
// Two implementations are provided: Mem, an in-process directory used when
// simulation and analytics share a process (the common case in this
// reproduction), and a TCP Server/Client pair with a line-oriented
// protocol, so the cmd/dirserver binary can serve real multi-process
// deployments.
package directory

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Common errors.
var (
	ErrNotFound = errors.New("directory: stream not found")
	// ErrDuplicate is retained for callers that still test for it.
	//
	// Deprecated: Register performs atomic contact replacement and no
	// longer returns this error; a re-registration (e.g. a session
	// reconfiguring its contact after a placement switch) simply wins.
	ErrDuplicate = errors.New("directory: stream already registered")
	ErrTimeout   = errors.New("directory: lookup timed out")
)

// Directory is the discovery API.
type Directory interface {
	// Register binds a stream name to contact information. Registering a
	// name that is already bound atomically replaces the contact: lookups
	// before the call see the old contact, lookups after see the new one,
	// and no lookup ever observes the name as absent in between.
	Register(stream, contact string) error
	// Lookup resolves a stream name immediately.
	Lookup(stream string) (string, error)
	// WaitLookup resolves a stream name, waiting up to timeout for it to
	// be registered. This covers readers that open a stream before the
	// writer creates it.
	WaitLookup(stream string, timeout time.Duration) (string, error)
	// Unregister removes a binding.
	Unregister(stream string) error
}

// Mem is an in-process directory. The zero value is not usable; call
// NewMem.
//
// WaitLookup blocks on a condition variable: Register broadcasts once per
// binding change rather than feeding per-waiter channels, so an arbitrary
// number of readers waiting on one stream wake with a single O(1)
// notification.
type Mem struct {
	mu      sync.Mutex
	cond    *sync.Cond
	entries map[string]string
}

// NewMem creates an empty in-process directory.
func NewMem() *Mem {
	d := &Mem{entries: make(map[string]string)}
	d.cond = sync.NewCond(&d.mu)
	return d
}

// Register binds stream to contact and wakes pending WaitLookups. A
// stream that is already bound has its contact atomically replaced.
func (d *Mem) Register(stream, contact string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.entries[stream] = contact
	d.cond.Broadcast()
	return nil
}

// Lookup resolves stream or returns ErrNotFound.
func (d *Mem) Lookup(stream string) (string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c, ok := d.entries[stream]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrNotFound, stream)
	}
	return c, nil
}

// WaitLookup resolves stream, blocking up to timeout for registration.
func (d *Mem) WaitLookup(stream string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	// sync.Cond has no timed wait; a timer broadcast bounds the sleep.
	expired := false
	timer := time.AfterFunc(timeout, func() {
		d.mu.Lock()
		expired = true
		d.mu.Unlock()
		d.cond.Broadcast()
	})
	defer timer.Stop()

	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if c, ok := d.entries[stream]; ok {
			return c, nil
		}
		if expired || !time.Now().Before(deadline) {
			return "", fmt.Errorf("%w: %q after %v", ErrTimeout, stream, timeout)
		}
		d.cond.Wait()
	}
}

// Unregister removes the binding (idempotent).
func (d *Mem) Unregister(stream string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.entries, stream)
	return nil
}

// Len reports the number of registered streams.
func (d *Mem) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}

package directory

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// Wire protocol: one request per line, space-separated.
//
//	REG <key> <contact> [ttl_ms]  -> OK | ERR <reason>
//	RENEW <key> <ttl_ms>          -> OK | ERR <reason>
//	GET <key>                     -> OK <contact> | ERR <reason>
//	WAIT <key> <millis>           -> OK <contact> | ERR <reason>
//	DEL <key>                     -> OK
//	CNT <tenant>                  -> OK <live-stream-count> | ERR <reason>
//	LST <prefix>                  -> OK [<key> <contact>]... | ERR <reason>
//
// <key> is a tenant-qualified stream name in the Qualify grammar —
// "tenant/stream", or a bare stream name for the legacy single-tenant
// namespace. The tenant id thus travels on the wire with every
// REG/RENEW/GET/WAIT/DEL, and the server shards/leases/purges under the
// same tenant/stream key space as Mem. CNT reports the number of live
// (unexpired) streams under one tenant's namespace; it requires a
// Mem-backed server. LST enumerates live bindings under a key prefix
// (requires a Lister-backed directory); because keys and contacts are
// whitespace-free, the response is a flat space-separated pair list.
//
// REG on an already-bound key atomically replaces the contact (OK),
// matching Mem semantics — re-registration is how a reconfiguring session
// publishes its new contact. A REG with ttl_ms takes a lease: the binding
// is purged ttl_ms after the last REG/RENEW, so contacts of crashed
// processes decay instead of lingering (requires a Leaser-backed
// directory; plain Directories reject leased requests). Keys and
// contacts must not contain whitespace; tenant ids additionally must not
// contain '/'.

// Server serves a Directory over TCP.
type Server struct {
	dir Directory
	ln  net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// Serve starts a server on addr (e.g. "127.0.0.1:0") backed by dir.
func Serve(addr string, dir Directory) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{dir: dir, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr reports the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and hangs up active clients.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		resp := s.dispatch(sc.Text())
		fmt.Fprintln(w, resp)
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(line string) string {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "ERR empty request"
	}
	switch fields[0] {
	case "REG":
		switch len(fields) {
		case 3:
			if err := s.dir.Register(fields[1], fields[2]); err != nil {
				return "ERR " + err.Error()
			}
			return "OK"
		case 4:
			ttl, ok := parseMillis(fields[3])
			if !ok {
				return "ERR bad ttl_ms"
			}
			lsr, ok := s.dir.(Leaser)
			if !ok {
				return "ERR directory does not support leases"
			}
			if err := lsr.RegisterTTL(fields[1], fields[2], ttl); err != nil {
				return "ERR " + err.Error()
			}
			return "OK"
		default:
			return "ERR REG wants <stream> <contact> [ttl_ms]"
		}
	case "RENEW":
		if len(fields) != 3 {
			return "ERR RENEW wants <stream> <ttl_ms>"
		}
		ttl, ok := parseMillis(fields[2])
		if !ok {
			return "ERR bad ttl_ms"
		}
		lsr, ok := s.dir.(Leaser)
		if !ok {
			return "ERR directory does not support leases"
		}
		if err := lsr.Renew(fields[1], ttl); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	case "GET":
		if len(fields) != 2 {
			return "ERR GET wants <stream>"
		}
		c, err := s.dir.Lookup(fields[1])
		if err != nil {
			return "ERR " + err.Error()
		}
		return "OK " + c
	case "WAIT":
		if len(fields) != 3 {
			return "ERR WAIT wants <stream> <millis>"
		}
		var ms int
		if _, err := fmt.Sscanf(fields[2], "%d", &ms); err != nil || ms < 0 {
			return "ERR bad millis"
		}
		c, err := s.dir.WaitLookup(fields[1], time.Duration(ms)*time.Millisecond)
		if err != nil {
			return "ERR " + err.Error()
		}
		return "OK " + c
	case "DEL":
		if len(fields) != 2 {
			return "ERR DEL wants <stream>"
		}
		if err := s.dir.Unregister(fields[1]); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	case "CNT":
		if len(fields) != 2 {
			return "ERR CNT wants <tenant>"
		}
		if err := ValidateTenant(fields[1]); err != nil {
			return "ERR " + err.Error()
		}
		tl, ok := s.dir.(interface{ TenantLen(string) int })
		if !ok {
			return "ERR directory does not support tenant counts"
		}
		return fmt.Sprintf("OK %d", tl.TenantLen(fields[1]))
	case "LST":
		if len(fields) > 2 {
			return "ERR LST wants [<prefix>]"
		}
		prefix := ""
		if len(fields) == 2 {
			prefix = fields[1]
		}
		lister, ok := s.dir.(Lister)
		if !ok {
			return "ERR directory does not support listing"
		}
		bindings, err := lister.List(prefix)
		if err != nil {
			return "ERR " + err.Error()
		}
		var b strings.Builder
		b.WriteString("OK")
		for k, v := range bindings {
			b.WriteByte(' ')
			b.WriteString(k)
			b.WriteByte(' ')
			b.WriteString(v)
		}
		return b.String()
	}
	return "ERR unknown verb " + fields[0]
}

// parseMillis parses a non-negative millisecond count into a Duration.
func parseMillis(s string) (time.Duration, bool) {
	var ms int
	if _, err := fmt.Sscanf(s, "%d", &ms); err != nil || ms < 0 {
		return 0, false
	}
	return time.Duration(ms) * time.Millisecond, true
}

// Client is a Directory backed by a remote Server. Each call opens a
// short-lived connection: directory traffic happens only at stream setup,
// so connection reuse is not worth the state.
type Client struct {
	Addr    string
	Timeout time.Duration // per-request dial/read deadline; default 5s
}

func (c *Client) roundTrip(req string) (string, error) {
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", c.Addr, timeout)
	if err != nil {
		return "", err
	}
	defer conn.Close()
	// WAIT can block server-side; give it extra room beyond the request's
	// own timeout.
	conn.SetDeadline(time.Now().Add(timeout + 30*time.Second))
	if _, err := fmt.Fprintln(conn, req); err != nil {
		return "", err
	}
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return "", err
		}
		return "", fmt.Errorf("directory: server closed connection")
	}
	resp := sc.Text()
	if strings.HasPrefix(resp, "ERR ") {
		msg := strings.TrimPrefix(resp, "ERR ")
		switch {
		case strings.Contains(msg, "not found"):
			return "", fmt.Errorf("%w: %s", ErrNotFound, msg)
		case strings.Contains(msg, "already registered"):
			return "", fmt.Errorf("%w: %s", ErrDuplicate, msg)
		case strings.Contains(msg, "timed out"):
			return "", fmt.Errorf("%w: %s", ErrTimeout, msg)
		}
		return "", fmt.Errorf("directory: %s", msg)
	}
	return strings.TrimSpace(strings.TrimPrefix(resp, "OK")), nil
}

// Register implements Directory.
func (c *Client) Register(stream, contact string) error {
	_, err := c.roundTrip(fmt.Sprintf("REG %s %s", stream, contact))
	return err
}

// Lookup implements Directory.
func (c *Client) Lookup(stream string) (string, error) {
	return c.roundTrip("GET " + stream)
}

// WaitLookup implements Directory.
func (c *Client) WaitLookup(stream string, timeout time.Duration) (string, error) {
	return c.roundTrip(fmt.Sprintf("WAIT %s %d", stream, timeout.Milliseconds()))
}

// Unregister implements Directory.
func (c *Client) Unregister(stream string) error {
	_, err := c.roundTrip("DEL " + stream)
	return err
}

// RegisterTTL implements Leaser over the wire.
func (c *Client) RegisterTTL(stream, contact string, ttl time.Duration) error {
	if ttl <= 0 {
		return c.Register(stream, contact)
	}
	_, err := c.roundTrip(fmt.Sprintf("REG %s %s %d", stream, contact, ttl.Milliseconds()))
	return err
}

// Renew implements Leaser over the wire.
func (c *Client) Renew(stream string, ttl time.Duration) error {
	_, err := c.roundTrip(fmt.Sprintf("RENEW %s %d", stream, ttl.Milliseconds()))
	return err
}

// TenantLen reports the number of live streams under a tenant's
// namespace on the server (0 on any error, matching Mem's best-effort
// introspection role).
func (c *Client) TenantLen(tenant string) int {
	resp, err := c.roundTrip("CNT " + tenant)
	if err != nil {
		return 0
	}
	var n int
	if _, err := fmt.Sscanf(resp, "%d", &n); err != nil {
		return 0
	}
	return n
}

// List implements Lister over the wire: the server returns the live
// bindings as a flat "key contact" pair list (keys and contacts are
// whitespace-free by protocol rule, so the split is unambiguous).
func (c *Client) List(prefix string) (map[string]string, error) {
	req := "LST"
	if prefix != "" {
		req += " " + prefix
	}
	resp, err := c.roundTrip(req)
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(resp)
	if len(fields)%2 != 0 {
		return nil, fmt.Errorf("directory: malformed LST response %q", resp)
	}
	out := make(map[string]string, len(fields)/2)
	for i := 0; i < len(fields); i += 2 {
		out[fields[i]] = fields[i+1]
	}
	return out, nil
}

var _ Directory = (*Mem)(nil)
var _ Directory = (*Client)(nil)
var _ Leaser = (*Mem)(nil)
var _ Leaser = (*Client)(nil)
var _ Lister = (*Mem)(nil)
var _ Lister = (*Client)(nil)

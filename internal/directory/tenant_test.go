package directory

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestQualifySplitRoundTrip(t *testing.T) {
	cases := []struct{ tenant, stream, key string }{
		{"", "gts", "gts"},
		{"climate-a", "gts", "climate-a/gts"},
		{"t1", "gts/e2.r0", "t1/gts/e2.r0"}, // stream may contain further '/'
	}
	for _, c := range cases {
		if got := Qualify(c.tenant, c.stream); got != c.key {
			t.Errorf("Qualify(%q,%q) = %q, want %q", c.tenant, c.stream, got, c.key)
		}
		tn, st := SplitTenant(c.key)
		if tn != c.tenant || st != c.stream {
			t.Errorf("SplitTenant(%q) = %q,%q, want %q,%q", c.key, tn, st, c.tenant, c.stream)
		}
	}
	if err := ValidateTenant("a/b"); err == nil {
		t.Error("ValidateTenant accepted a tenant with '/'")
	}
	if err := ValidateTenant("a b"); err == nil {
		t.Error("ValidateTenant accepted a tenant with whitespace")
	}
	if err := ValidateTenant(""); err != nil {
		t.Errorf("ValidateTenant rejected the legacy empty tenant: %v", err)
	}
}

// Two tenants register the same stream name; each resolves only its own
// contact, and purging one tenant's namespace leaves the other intact.
func TestTenantNamespaceIsolation(t *testing.T) {
	d := NewMem()
	defer d.Close()
	a := Scoped(d, "tenant-a")
	b := Scoped(d, "tenant-b")
	if err := a.Register("gts", "contact-a"); err != nil {
		t.Fatal(err)
	}
	if err := b.Register("gts", "contact-b"); err != nil {
		t.Fatal(err)
	}
	if c, err := a.Lookup("gts"); err != nil || c != "contact-a" {
		t.Fatalf("tenant-a lookup = %q, %v", c, err)
	}
	if c, err := b.Lookup("gts"); err != nil || c != "contact-b" {
		t.Fatalf("tenant-b lookup = %q, %v", c, err)
	}
	if n := d.TenantLen("tenant-a"); n != 1 {
		t.Fatalf("TenantLen(tenant-a) = %d, want 1", n)
	}
	if err := a.Unregister("gts"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Lookup("gts"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("tenant-a lookup after unregister: %v", err)
	}
	if c, err := b.Lookup("gts"); err != nil || c != "contact-b" {
		t.Fatalf("tenant-b lookup after a's unregister = %q, %v", c, err)
	}
}

// A scoped view of a Leaser directory must keep leases working.
func TestScopedLeases(t *testing.T) {
	d := NewMemOpts(MemOptions{Shards: 4, JanitorSlack: time.Millisecond})
	defer d.Close()
	s := Scoped(d, "t")
	lsr, ok := s.(Leaser)
	if !ok {
		t.Fatal("Scoped(Mem) does not implement Leaser")
	}
	if err := lsr.RegisterTTL("gts", "c", 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := lsr.Renew("gts", 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := s.Lookup("gts"); errors.Is(err, ErrNotFound) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("scoped lease never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Concurrent tenants hammering register/lookup/unregister across shards
// must stay consistent (run under -race for the real assertion).
func TestShardedConcurrentTenants(t *testing.T) {
	d := NewMemOpts(MemOptions{Shards: 8})
	defer d.Close()
	const tenants, streams = 16, 8
	var wg sync.WaitGroup
	errCh := make(chan error, tenants)
	for tn := 0; tn < tenants; tn++ {
		tn := tn
		wg.Add(1)
		go func() {
			defer wg.Done()
			tenant := fmt.Sprintf("t%02d", tn)
			sd := Scoped(d, tenant)
			for i := 0; i < streams; i++ {
				name := fmt.Sprintf("s%d", i)
				want := tenant + ":" + name
				if err := sd.Register(name, want); err != nil {
					errCh <- err
					return
				}
				got, err := sd.WaitLookup(name, time.Second)
				if err != nil {
					errCh <- err
					return
				}
				if got != want {
					errCh <- fmt.Errorf("tenant %s: lookup %s = %q, want %q", tenant, name, got, want)
					return
				}
			}
			for i := 0; i < streams/2; i++ {
				if err := sd.Unregister(fmt.Sprintf("s%d", i)); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if n := d.Len(); n != tenants*streams/2 {
		t.Fatalf("Len = %d, want %d", n, tenants*streams/2)
	}
	for tn := 0; tn < tenants; tn++ {
		if n := d.TenantLen(fmt.Sprintf("t%02d", tn)); n != streams/2 {
			t.Fatalf("TenantLen(t%02d) = %d, want %d", tn, n, streams/2)
		}
	}
}

// WaitLookup waiters are per-shard: a register on one shard wakes only
// that shard's waiters, and cross-tenant registrations still resolve
// correctly under concurrency.
func TestWaitLookupAcrossShards(t *testing.T) {
	d := NewMemOpts(MemOptions{Shards: 4})
	defer d.Close()
	const n = 12
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			key := Qualify(fmt.Sprintf("t%d", i), "stream")
			c, err := d.WaitLookup(key, 2*time.Second)
			if err == nil && c != fmt.Sprintf("c%d", i) {
				err = fmt.Errorf("got %q", c)
			}
			done <- err
		}()
	}
	time.Sleep(10 * time.Millisecond)
	for i := 0; i < n; i++ {
		if err := d.Register(Qualify(fmt.Sprintf("t%d", i), "stream"), fmt.Sprintf("c%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// Close must stop armed janitor timers and wake pending waiters; the
// repeated setup/teardown of scenario tests must not accumulate timers.
func TestCloseStopsJanitorAndWaiters(t *testing.T) {
	for i := 0; i < 50; i++ {
		d := NewMemOpts(MemOptions{Shards: 4, JanitorSlack: time.Millisecond})
		// Arm a janitor far in the future: without Close it would linger
		// for an hour.
		if err := d.RegisterTTL("t/lingering", "c", time.Hour); err != nil {
			t.Fatal(err)
		}
		waiterErr := make(chan error, 1)
		go func() {
			_, err := d.WaitLookup("t/never", 30*time.Second)
			waiterErr <- err
		}()
		time.Sleep(time.Millisecond)
		d.Close()
		select {
		case err := <-waiterErr:
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("waiter woke with %v, want ErrClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Close did not wake the pending WaitLookup")
		}
		for _, sh := range d.shards {
			sh.mu.Lock()
			if sh.janitor != nil {
				sh.mu.Unlock()
				t.Fatal("janitor timer survived Close")
			}
			sh.mu.Unlock()
		}
		// Registration after Close fails rather than re-arming timers.
		if err := d.RegisterTTL("t/late", "c", time.Minute); !errors.Is(err, ErrClosed) {
			t.Fatalf("RegisterTTL after Close: %v, want ErrClosed", err)
		}
	}
}

// The janitor slack is configurable: with a large slack, an expired
// lease is not proactively purged at expiry (Lookup still refuses it —
// expiry is enforced on read — but the janitor broadcast that wakes
// waiters arrives only after expiry+slack).
func TestJanitorSlackConfigurable(t *testing.T) {
	d := NewMemOpts(MemOptions{Shards: 1, JanitorSlack: 300 * time.Millisecond})
	defer d.Close()
	if err := d.RegisterTTL("t/s", "c", 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	// Expired for readers immediately...
	if _, err := d.Lookup("t/s"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Lookup of expired lease: %v, want ErrNotFound", err)
	}
	// ...but the entry is still physically present until expiry+slack.
	sh := d.shard("t/s")
	sh.mu.Lock()
	_, present := sh.entries["t/s"]
	sh.mu.Unlock()
	if !present {
		t.Fatal("entry purged before the configured janitor slack elapsed")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		sh.mu.Lock()
		_, present = sh.entries["t/s"]
		sh.mu.Unlock()
		if !present {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("janitor never purged the expired lease")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Tenant-qualified keys travel through the TCP wire protocol, and CNT
// reports per-tenant live stream counts.
func TestServerTenantKeysAndCount(t *testing.T) {
	mem := NewMemOpts(MemOptions{Shards: 4})
	defer mem.Close()
	srv, err := Serve("127.0.0.1:0", mem)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := &Client{Addr: srv.Addr()}

	if err := cl.Register(Qualify("ta", "gts"), "contact-a"); err != nil {
		t.Fatal(err)
	}
	if err := cl.RegisterTTL(Qualify("tb", "gts"), "contact-b", time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := cl.Renew(Qualify("tb", "gts"), time.Minute); err != nil {
		t.Fatal(err)
	}
	if c, err := cl.Lookup(Qualify("ta", "gts")); err != nil || c != "contact-a" {
		t.Fatalf("wire lookup ta/gts = %q, %v", c, err)
	}
	if c, err := cl.WaitLookup(Qualify("tb", "gts"), time.Second); err != nil || c != "contact-b" {
		t.Fatalf("wire wait tb/gts = %q, %v", c, err)
	}
	if n := cl.TenantLen("ta"); n != 1 {
		t.Fatalf("wire CNT ta = %d, want 1", n)
	}
	if n := cl.TenantLen("tb"); n != 1 {
		t.Fatalf("wire CNT tb = %d, want 1", n)
	}
	if n := cl.TenantLen("tc"); n != 0 {
		t.Fatalf("wire CNT tc = %d, want 0", n)
	}
	if err := cl.Unregister(Qualify("ta", "gts")); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Lookup(Qualify("ta", "gts")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("wire lookup after DEL: %v", err)
	}
	// A malformed CNT (tenant with '/') is rejected server-side.
	if resp := srv.dispatch("CNT a/b"); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("CNT a/b = %q, want ERR", resp)
	}
}

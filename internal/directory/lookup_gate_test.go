//go:build !race

package directory

import (
	"encoding/json"
	"os"
	"testing"
)

// TestDirectoryLookupBudget is the CI regression gate for the sharded
// directory's lookup latency: a single-threaded Lookup over a 4096-entry
// multi-tenant namespace must stay under the ns/op budget recorded in
// BENCH_directory.json. The budget is generous (the measured cost is a
// hash + one striped mutex + map probe); the gate catches an accidental
// global lock or per-lookup allocation, not scheduler jitter. Excluded
// under -race (instrumented builds time nothing meaningful).
func TestDirectoryLookupBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark gate skipped in -short")
	}
	blob, err := os.ReadFile("../../BENCH_directory.json")
	if err != nil {
		t.Fatalf("BENCH_directory.json missing: %v", err)
	}
	var budget struct {
		LookupBudgetNs float64 `json:"lookup_budget_ns"`
	}
	if err := json.Unmarshal(blob, &budget); err != nil {
		t.Fatalf("BENCH_directory.json: %v", err)
	}
	if budget.LookupBudgetNs <= 0 {
		t.Fatal("BENCH_directory.json has no lookup_budget_ns")
	}

	res := testing.Benchmark(BenchmarkDirectoryLookup)
	t.Logf("sharded lookup %dns/op, %d allocs/op (budget %.0fns)",
		res.NsPerOp(), res.AllocsPerOp(), budget.LookupBudgetNs)
	if float64(res.NsPerOp()) > budget.LookupBudgetNs {
		t.Fatalf("directory lookup %dns/op exceeds budget %.0fns/op (BENCH_directory.json)",
			res.NsPerOp(), budget.LookupBudgetNs)
	}
	if allocs := res.AllocsPerOp(); allocs != 0 {
		t.Fatalf("directory lookup allocates (%d allocs/op)", allocs)
	}
}

package directory

import (
	"fmt"
	"strings"
	"time"
)

// Tenant namespace grammar. A directory key is either a bare stream
// name ("gts-field") — the single-tenant legacy form, tenant id "" —
// or a tenant-qualified key "tenant/stream" ("climate-a/gts-field").
// Everything a session registers (the stream's coordinator contact,
// epoch-qualified data contacts, rank-host proxies, stats keys) hangs
// under the owning tenant's prefix, so two tenants can both run a
// stream named "gts-field" on one shared directory without colliding.
//
// Tenant ids must not contain '/', whitespace, or be empty-but-quoted;
// stream names may contain further '/' (only the first separates the
// tenant).

// Qualify returns the directory key of stream under tenant's namespace.
// An empty tenant returns the bare stream name (legacy single-tenant
// form).
func Qualify(tenant, stream string) string {
	if tenant == "" {
		return stream
	}
	return tenant + "/" + stream
}

// SplitTenant splits a qualified key into its tenant id and stream
// name. Bare keys return tenant "".
func SplitTenant(key string) (tenant, stream string) {
	if i := strings.IndexByte(key, '/'); i >= 0 {
		return key[:i], key[i+1:]
	}
	return "", key
}

// ValidateTenant rejects tenant ids that cannot travel in the namespace
// grammar or the line-oriented wire protocol.
func ValidateTenant(tenant string) error {
	if tenant == "" {
		return nil
	}
	if strings.ContainsAny(tenant, "/ \t\n\r") {
		return fmt.Errorf("directory: tenant id %q contains '/' or whitespace", tenant)
	}
	return nil
}

// Scoped returns a Directory view that qualifies every stream name
// under tenant before delegating to d. When d also implements Leaser,
// the returned view does too, so leases stay available through the
// scoped handle. Scoping with tenant "" returns d unchanged.
func Scoped(d Directory, tenant string) Directory {
	if tenant == "" {
		return d
	}
	if lsr, ok := d.(Leaser); ok {
		return &scopedLeaser{scoped{d: d, tenant: tenant}, lsr}
	}
	return &scoped{d: d, tenant: tenant}
}

type scoped struct {
	d      Directory
	tenant string
}

func (s *scoped) Register(stream, contact string) error {
	return s.d.Register(Qualify(s.tenant, stream), contact)
}

func (s *scoped) Lookup(stream string) (string, error) {
	return s.d.Lookup(Qualify(s.tenant, stream))
}

func (s *scoped) WaitLookup(stream string, timeout time.Duration) (string, error) {
	return s.d.WaitLookup(Qualify(s.tenant, stream), timeout)
}

func (s *scoped) Unregister(stream string) error {
	return s.d.Unregister(Qualify(s.tenant, stream))
}

type scopedLeaser struct {
	scoped
	lsr Leaser
}

func (s *scopedLeaser) RegisterTTL(stream, contact string, ttl time.Duration) error {
	return s.lsr.RegisterTTL(Qualify(s.tenant, stream), contact, ttl)
}

func (s *scopedLeaser) Renew(stream string, ttl time.Duration) error {
	return s.lsr.Renew(Qualify(s.tenant, stream), ttl)
}

var _ Directory = (*scoped)(nil)
var _ Leaser = (*scopedLeaser)(nil)

package adios

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"flexio/internal/core"
	"flexio/internal/ndarray"
)

// File mode stores each stream as a directory <fsroot>/<stream>.bp/
// containing one self-describing container per timestep
// (step-%06d.bp) and a ".done" end-of-stream marker. The container is a
// simplified ADIOS-BP: magic, record count, then one record per written
// variable carrying full metadata — which is what lets a reader
// re-assemble arbitrary selections offline, exactly as in stream mode.
//
// Layout per record:
//
//	uvarint nameLen | name | u8 kind | uvarint elemSize | uvarint writer
//	uvarint ndims | ndims varint globalShape
//	ndims varint lo | ndims varint hi          (box; absent for ndims==0)
//	uvarint dataLen | data
const bpMagic = "FXBP1\n"

var errBadBP = errors.New("adios: corrupt BP container")

type fileRecord struct {
	meta   core.VarMeta
	writer int
	data   []byte
}

// --- writer side ---

type fileWriterGroup struct {
	dir    string
	nRanks int

	mu      sync.Mutex
	curStep map[int64]*fileStep
	closes  int
	closed  bool
}

type fileStep struct {
	step     int64
	records  []fileRecord
	deposits int
	done     chan struct{}
	err      error
}

func newFileWriterGroup(root, stream string, nRanks int) (*fileWriterGroup, error) {
	dir := filepath.Join(root, stream+".bp")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &fileWriterGroup{dir: dir, nRanks: nRanks, curStep: make(map[int64]*fileStep)}, nil
}

type fileWriter struct {
	g    *fileWriterGroup
	rank int
	cur  *fileStep
}

func (w *fileWriter) BeginStep(step int64) error {
	g := w.g
	g.mu.Lock()
	defer g.mu.Unlock()
	if w.cur != nil {
		return fmt.Errorf("adios: rank %d already in a step", w.rank)
	}
	st, ok := g.curStep[step]
	if !ok {
		st = &fileStep{step: step, done: make(chan struct{})}
		g.curStep[step] = st
	}
	w.cur = st
	return nil
}

func (w *fileWriter) Write(meta core.VarMeta, data []byte) error {
	if err := meta.Validate(); err != nil {
		return err
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	g := w.g
	g.mu.Lock()
	defer g.mu.Unlock()
	if w.cur == nil {
		return fmt.Errorf("adios: rank %d Write before BeginStep", w.rank)
	}
	w.cur.records = append(w.cur.records, fileRecord{meta: meta, writer: w.rank, data: cp})
	return nil
}

func (w *fileWriter) EndStep() error {
	g := w.g
	g.mu.Lock()
	st := w.cur
	if st == nil {
		g.mu.Unlock()
		return fmt.Errorf("adios: rank %d EndStep before BeginStep", w.rank)
	}
	w.cur = nil
	st.deposits++
	last := st.deposits == g.nRanks
	if last {
		delete(g.curStep, st.step)
	}
	g.mu.Unlock()
	if !last {
		<-st.done
		return st.err
	}
	st.err = g.writeStepFile(st)
	close(st.done)
	return st.err
}

func (g *fileWriterGroup) writeStepFile(st *fileStep) error {
	// Deterministic record order: by writer rank, then name.
	sort.SliceStable(st.records, func(i, j int) bool {
		if st.records[i].writer != st.records[j].writer {
			return st.records[i].writer < st.records[j].writer
		}
		return st.records[i].meta.Name < st.records[j].meta.Name
	})
	buf := make([]byte, 0, 1<<16)
	buf = append(buf, bpMagic...)
	buf = binary.AppendUvarint(buf, uint64(len(st.records)))
	for _, rec := range st.records {
		buf = binary.AppendUvarint(buf, uint64(len(rec.meta.Name)))
		buf = append(buf, rec.meta.Name...)
		buf = append(buf, byte(rec.meta.Kind))
		buf = binary.AppendUvarint(buf, uint64(rec.meta.ElemSize))
		buf = binary.AppendUvarint(buf, uint64(rec.writer))
		nd := len(rec.meta.GlobalShape)
		buf = binary.AppendUvarint(buf, uint64(nd))
		for _, s := range rec.meta.GlobalShape {
			buf = binary.AppendVarint(buf, s)
		}
		for d := 0; d < nd; d++ {
			buf = binary.AppendVarint(buf, rec.meta.Box.Lo[d])
		}
		for d := 0; d < nd; d++ {
			buf = binary.AppendVarint(buf, rec.meta.Box.Hi[d])
		}
		buf = binary.AppendUvarint(buf, uint64(len(rec.data)))
		buf = append(buf, rec.data...)
	}
	final := filepath.Join(g.dir, fmt.Sprintf("step-%06d.bp", st.step))
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, final) // atomic publish: readers never see partial files
}

// Close is collective: the End-of-Stream marker lands once every rank
// has closed.
func (w *fileWriter) Close() error {
	g := w.g
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil
	}
	g.closes++
	if g.closes < g.nRanks {
		return nil
	}
	g.closed = true
	return os.WriteFile(filepath.Join(g.dir, ".done"), nil, 0o644)
}

// --- reader side ---

type fileReaderGroup struct {
	dir    string
	nRanks int

	mu    sync.Mutex
	cache map[int64][]fileRecord  // parsed steps, shared across ranks
	idx   map[varIdxKey]*varIndex // per-(step,var) writer-box indexes
}

// varIdxKey identifies one variable's writer-box index in one step.
type varIdxKey struct {
	step int64
	name string
}

// varIndex maps a step's writer boxes for one variable back to the
// records carrying them: recs[i] is the step-record whose box the
// interval index knows as rank i. Selection queries run in O(actual
// overlaps) instead of a walk over every record.
type varIndex struct {
	recs     []int
	elemSize int
	index    *ndarray.IntervalIndex
}

func newFileReaderGroup(root, stream string, nRanks int) *fileReaderGroup {
	return &fileReaderGroup{
		dir:    filepath.Join(root, stream+".bp"),
		nRanks: nRanks,
		cache:  make(map[int64][]fileRecord),
		idx:    make(map[varIdxKey]*varIndex),
	}
}

// arrayIndex returns (building and caching if needed) the interval index
// over the writer boxes of one variable in one step. Step containers are
// immutable once published, so entries never invalidate; all ranks share
// them like the parsed record cache.
func (g *fileReaderGroup) arrayIndex(step int64, name string, recs []fileRecord) (*varIndex, error) {
	key := varIdxKey{step: step, name: name}
	g.mu.Lock()
	defer g.mu.Unlock()
	if vi, ok := g.idx[key]; ok {
		return vi, nil
	}
	vi := &varIndex{}
	var boxes []ndarray.Box
	for i := range recs {
		if recs[i].meta.Name != name || recs[i].meta.Kind != core.GlobalArrayVar {
			continue
		}
		vi.recs = append(vi.recs, i)
		vi.elemSize = recs[i].meta.ElemSize
		boxes = append(boxes, recs[i].meta.Box)
	}
	if vi.elemSize == 0 {
		return nil, fmt.Errorf("adios: no array %q in step %d", name, step)
	}
	vi.index = ndarray.NewIntervalIndex(boxes)
	g.idx[key] = vi
	return vi, nil
}

// loadStep parses (or serves from cache) a step container; ok=false when
// the file does not exist yet.
func (g *fileReaderGroup) loadStep(step int64) ([]fileRecord, bool, error) {
	g.mu.Lock()
	if recs, ok := g.cache[step]; ok {
		g.mu.Unlock()
		return recs, true, nil
	}
	g.mu.Unlock()
	path := filepath.Join(g.dir, fmt.Sprintf("step-%06d.bp", step))
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	recs, err := parseBP(raw)
	if err != nil {
		return nil, false, err
	}
	g.mu.Lock()
	g.cache[step] = recs
	g.mu.Unlock()
	return recs, true, nil
}

func (g *fileReaderGroup) eos() bool {
	_, err := os.Stat(filepath.Join(g.dir, ".done"))
	return err == nil
}

func parseBP(raw []byte) ([]fileRecord, error) {
	if len(raw) < len(bpMagic) || string(raw[:len(bpMagic)]) != bpMagic {
		return nil, errBadBP
	}
	pos := len(bpMagic)
	count, adv := binary.Uvarint(raw[pos:])
	if adv <= 0 {
		return nil, errBadBP
	}
	pos += adv
	uv := func() (uint64, error) {
		v, a := binary.Uvarint(raw[pos:])
		if a <= 0 {
			return 0, errBadBP
		}
		pos += a
		return v, nil
	}
	sv := func() (int64, error) {
		v, a := binary.Varint(raw[pos:])
		if a <= 0 {
			return 0, errBadBP
		}
		pos += a
		return v, nil
	}
	recs := make([]fileRecord, 0, count)
	for i := uint64(0); i < count; i++ {
		nameLen, err := uv()
		if err != nil || pos+int(nameLen) > len(raw) {
			return nil, errBadBP
		}
		name := string(raw[pos : pos+int(nameLen)])
		pos += int(nameLen)
		if pos >= len(raw) {
			return nil, errBadBP
		}
		kind := core.VarKind(raw[pos])
		pos++
		elemSize, err := uv()
		if err != nil {
			return nil, err
		}
		writer, err := uv()
		if err != nil {
			return nil, err
		}
		nd, err := uv()
		if err != nil || nd > 16 {
			return nil, errBadBP
		}
		meta := core.VarMeta{Name: name, Kind: kind, ElemSize: int(elemSize)}
		if nd > 0 {
			meta.GlobalShape = make([]int64, nd)
			for d := range meta.GlobalShape {
				if meta.GlobalShape[d], err = sv(); err != nil {
					return nil, err
				}
			}
			lo := make([]int64, nd)
			hi := make([]int64, nd)
			for d := range lo {
				if lo[d], err = sv(); err != nil {
					return nil, err
				}
			}
			for d := range hi {
				if hi[d], err = sv(); err != nil {
					return nil, err
				}
			}
			meta.Box = ndarray.Box{Lo: lo, Hi: hi}
		}
		dataLen, err := uv()
		if err != nil || pos+int(dataLen) > len(raw) {
			return nil, errBadBP
		}
		data := make([]byte, dataLen)
		copy(data, raw[pos:pos+int(dataLen)])
		pos += int(dataLen)
		recs = append(recs, fileRecord{meta: meta, writer: int(writer), data: data})
	}
	return recs, nil
}

type fileReaderRank struct {
	g        *fileReaderGroup
	rank     int
	arraySel map[string]ndarray.Box
	pgSel    map[int]bool
	cur      []fileRecord
	curStep  int64
	nextStep int64
	inStep   bool
	poll     time.Duration
	overlaps []ndarray.OverlapTarget // query arena, reused across ReadArrays
}

func newFileReader(g *fileReaderGroup, rank int) *fileReaderRank {
	return &fileReaderRank{
		g:        g,
		rank:     rank,
		arraySel: make(map[string]ndarray.Box),
		pgSel:    make(map[int]bool),
		poll:     500 * time.Microsecond,
	}
}

func (r *fileReaderRank) SelectArray(name string, box ndarray.Box) error {
	if r.inStep {
		return fmt.Errorf("adios: selection change inside a step")
	}
	r.arraySel[name] = box
	return nil
}

func (r *fileReaderRank) SelectProcessGroups(writers []int) error {
	if r.inStep {
		return fmt.Errorf("adios: selection change inside a step")
	}
	for _, w := range writers {
		r.pgSel[w] = true
	}
	return nil
}

func (r *fileReaderRank) BeginStep() (int64, bool) {
	for {
		recs, ok, err := r.g.loadStep(r.nextStep)
		if err != nil {
			return 0, false
		}
		if ok {
			r.cur = recs
			r.curStep = r.nextStep
			r.nextStep++
			r.inStep = true
			return r.curStep, true
		}
		if r.g.eos() {
			// Re-check once: the step file may have landed before .done.
			if recs, ok, _ := r.g.loadStep(r.nextStep); ok {
				r.cur = recs
				r.curStep = r.nextStep
				r.nextStep++
				r.inStep = true
				return r.curStep, true
			}
			return 0, false
		}
		time.Sleep(r.poll)
	}
}

func (r *fileReaderRank) ReadArray(name string) ([]byte, ndarray.Box, error) {
	if !r.inStep {
		return nil, ndarray.Box{}, fmt.Errorf("adios: ReadArray outside a step")
	}
	sel, ok := r.arraySel[name]
	if !ok {
		return nil, ndarray.Box{}, fmt.Errorf("adios: rank %d did not select %q", r.rank, name)
	}
	vi, err := r.g.arrayIndex(r.curStep, name, r.cur)
	if err != nil {
		return nil, sel, err
	}
	out := make([]byte, sel.NumElements()*int64(vi.elemSize))
	r.overlaps = vi.index.AppendOverlaps(r.overlaps, sel)
	if len(r.overlaps) == 0 {
		return nil, sel, fmt.Errorf("adios: no data overlaps selection %v of %q", sel, name)
	}
	for _, tgt := range r.overlaps {
		rec := &r.cur[vi.recs[tgt.Rank]]
		// Scatter each overlap straight from the record's bytes into the
		// assembly buffer — no intermediate packed copy.
		if err := ndarray.CopyRegion(out, rec.data, sel, rec.meta.Box, tgt.Region, vi.elemSize); err != nil {
			return nil, sel, err
		}
	}
	return out, sel, nil
}

func (r *fileReaderRank) ReadScalar(name string) ([]byte, error) {
	if !r.inStep {
		return nil, fmt.Errorf("adios: ReadScalar outside a step")
	}
	for _, rec := range r.cur {
		if rec.meta.Name == name && rec.meta.Kind == core.ScalarVar {
			return rec.data, nil
		}
	}
	return nil, fmt.Errorf("adios: no scalar %q in step %d", name, r.curStep)
}

func (r *fileReaderRank) ReadProcessGroups(name string) (map[int][]byte, error) {
	if !r.inStep {
		return nil, fmt.Errorf("adios: ReadProcessGroups outside a step")
	}
	out := make(map[int][]byte)
	for _, rec := range r.cur {
		if rec.meta.Name == name && rec.meta.Kind == core.ProcessGroupVar && r.pgSel[rec.writer] {
			out[rec.writer] = rec.data
		}
	}
	return out, nil
}

func (r *fileReaderRank) EndStep() error {
	if !r.inStep {
		return fmt.Errorf("adios: EndStep outside a step")
	}
	r.inStep = false
	r.cur = nil
	return nil
}

func (r *fileReaderRank) Close() error { return nil }

package adios

import (
	"bytes"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"flexio/internal/core"
	"flexio/internal/dcplugin"
	"flexio/internal/directory"
	"flexio/internal/evpath"
	"flexio/internal/machine"
	"flexio/internal/monitor"
	"flexio/internal/ndarray"
	"flexio/internal/rdma"
)

const testConfigXML = `
<adios-config>
  <io name="particles">
    <engine type="stream">
      <parameter name="caching" value="CACHING_ALL"/>
      <parameter name="batching" value="true"/>
      <parameter name="async" value="true"/>
      <parameter name="queue_depth" value="4"/>
    </engine>
  </io>
  <io name="restart">
    <engine type="file"/>
  </io>
</adios-config>`

func TestParseConfig(t *testing.T) {
	cfg, err := ParseConfig(strings.NewReader(testConfigXML))
	if err != nil {
		t.Fatal(err)
	}
	p := cfg.IOs["particles"]
	if p == nil || p.Engine != "stream" {
		t.Fatalf("particles = %+v", p)
	}
	opts, err := p.coreOptions()
	if err != nil {
		t.Fatal(err)
	}
	if !opts.Batching || !opts.Async || opts.AsyncQueueDepth != 4 {
		t.Fatalf("opts = %+v", opts)
	}
	if cfg.IOs["restart"].Engine != "file" {
		t.Fatal("restart should be file engine")
	}
}

func TestParseConfigErrors(t *testing.T) {
	bad := []string{
		`<adios-config><io><engine type="stream"/></io></adios-config>`,        // no name
		`<adios-config><io name="a"/><io name="a"/></adios-config>`,            // duplicate
		`<adios-config><io name="a"><engine type="hdf5"/></io></adios-config>`, // engine
		`not xml at all`,
	}
	for _, src := range bad {
		if _, err := ParseConfig(strings.NewReader(src)); err == nil {
			t.Errorf("config %q parsed but should not", src)
		}
	}
	badParams := []string{
		`<parameter name="caching" value="SOMETIMES"/>`,
		`<parameter name="batching" value="maybe"/>`,
		`<parameter name="async" value="?"/>`,
		`<parameter name="queue_depth" value="0"/>`,
		`<parameter name="transport" value="carrier-pigeon"/>`,
		`<parameter name="wormhole" value="1"/>`,
	}
	for _, p := range badParams {
		src := `<adios-config><io name="x"><engine type="stream">` + p + `</engine></io></adios-config>`
		cfg, err := ParseConfig(strings.NewReader(src))
		if err != nil {
			t.Errorf("%s: parse failed early: %v", p, err)
			continue
		}
		if _, err := cfg.IOs["x"].coreOptions(); err == nil {
			t.Errorf("%s: options accepted but should not", p)
		}
	}
}

func newTestContext(t *testing.T, cfgXML string) *Context {
	t.Helper()
	var cfg *Config
	if cfgXML != "" {
		var err error
		cfg, err = ParseConfig(strings.NewReader(cfgXML))
		if err != nil {
			t.Fatal(err)
		}
	}
	net := evpath.NewNet(rdma.NewFabric(machine.Titan(8).Net))
	return NewContext(net, directory.NewMem(), t.TempDir(), cfg)
}

// runEngineRoundTrip exercises the identical application code against a
// given IO group — the paper's central compatibility claim: the same
// program works in stream mode and file mode, switched only by config.
func runEngineRoundTrip(t *testing.T, ctx *Context, ioName string) {
	t.Helper()
	io, err := ctx.DeclareIO(ioName)
	if err != nil {
		t.Fatal(err)
	}
	const nw, nr, steps = 4, 2, 3
	shape := []int64{16, 16}
	wdec, _ := ndarray.BlockDecompose(shape, []int{2, 2})
	rdec, _ := ndarray.BlockDecompose(shape, []int{2, 1})
	stream := "demo-" + ioName

	var writers sync.WaitGroup
	for w := 0; w < nw; w++ {
		w := w
		writers.Add(1)
		go func() {
			defer writers.Done()
			wr, err := io.OpenWriter(stream, w, nw)
			if err != nil {
				t.Errorf("writer %d open: %v", w, err)
				return
			}
			for s := int64(0); s < steps; s++ {
				if err := wr.BeginStep(s); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				box := wdec.Boxes[w]
				data := make([]float64, box.NumElements())
				for i := range data {
					data[i] = float64(w*1000) + float64(s)
				}
				if err := wr.WriteFloat64s("field", shape, box, data); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				if w == 0 {
					if err := wr.WriteScalarFloat64("time", float64(s)*0.5); err != nil {
						t.Errorf("writer %d scalar: %v", w, err)
						return
					}
				}
				if err := wr.EndStep(); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
			if err := wr.Close(); err != nil {
				t.Errorf("writer %d close: %v", w, err)
			}
		}()
	}

	var readers sync.WaitGroup
	for r := 0; r < nr; r++ {
		r := r
		readers.Add(1)
		go func() {
			defer readers.Done()
			rd, err := io.OpenReader(stream, r, nr)
			if err != nil {
				t.Errorf("reader %d open: %v", r, err)
				return
			}
			if err := rd.SelectArray("field", rdec.Boxes[r]); err != nil {
				t.Errorf("reader %d: %v", r, err)
				return
			}
			for s := int64(0); s < steps; s++ {
				step, ok := rd.BeginStep()
				if !ok || step != s {
					t.Errorf("reader %d: step %d ok=%v want %d", r, step, ok, s)
					return
				}
				data, box, err := rd.ReadFloat64s("field")
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if int64(len(data)) != box.NumElements() {
					t.Errorf("reader %d: %d values for box %v", r, len(data), box)
					return
				}
				// Spot-check: first element belongs to some writer block
				// and must carry that writer's signature for this step.
				v := data[0]
				wRank := int(v) / 1000
				if v != float64(wRank*1000)+float64(s) {
					t.Errorf("reader %d step %d: bad value %g", r, s, v)
					return
				}
				tv, err := rd.ReadScalarFloat64("time")
				if err != nil {
					t.Errorf("reader %d scalar: %v", r, err)
					return
				}
				if tv != float64(s)*0.5 {
					t.Errorf("reader %d: time = %g, want %g", r, tv, float64(s)*0.5)
					return
				}
				rd.EndStep()
			}
			if _, ok := rd.BeginStep(); ok {
				t.Errorf("reader %d: expected EOS", r)
			}
		}()
	}
	// For stream mode, close only after all writers wrote (the writer
	// close above is on rank 0 after its loop — but ranks complete
	// together since EndStep synchronizes). Wait all.
	writers.Wait()
	readers.Wait()
}

func TestStreamEngineRoundTrip(t *testing.T) {
	ctx := newTestContext(t, "")
	runEngineRoundTrip(t, ctx, "unconfigured") // defaults to stream
}

func TestFileEngineRoundTrip(t *testing.T) {
	ctx := newTestContext(t, testConfigXML)
	runEngineRoundTrip(t, ctx, "restart")
}

func TestConfiguredStreamEngine(t *testing.T) {
	ctx := newTestContext(t, testConfigXML)
	runEngineRoundTrip(t, ctx, "particles") // CACHING_ALL + batching + async
}

func TestEngineSwitchIsConfigOnly(t *testing.T) {
	// The same runEngineRoundTrip body ran under both engines above;
	// this test pins the property explicitly by diffing nothing but the
	// config string.
	cfgStream := `<adios-config><io name="out"><engine type="stream"/></io></adios-config>`
	cfgFile := `<adios-config><io name="out"><engine type="file"/></io></adios-config>`
	for _, cfg := range []string{cfgStream, cfgFile} {
		ctx := newTestContext(t, cfg)
		runEngineRoundTrip(t, ctx, "out")
	}
}

func TestFileModeOnDiskArtifacts(t *testing.T) {
	ctx := newTestContext(t, `<adios-config><io name="o"><engine type="file"/></io></adios-config>`)
	io, _ := ctx.DeclareIO("o")
	wr, err := io.OpenWriter("artifacts", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	wr.BeginStep(0)
	shape := []int64{4}
	wr.WriteFloat64s("x", shape, ndarray.BoxFromShape(shape), []float64{1, 2, 3, 4})
	wr.EndStep()
	wr.Close()

	bpDir := ctx.FSRoot + "/artifacts.bp"
	for _, f := range []string{"step-000000.bp", ".done"} {
		if _, err := os.Stat(bpDir + "/" + f); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}
}

func TestParseBPCorrupt(t *testing.T) {
	if _, err := parseBP([]byte("garbage")); err == nil {
		t.Fatal("garbage must not parse")
	}
	// Truncations of a valid container must all fail cleanly.
	g := &fileWriterGroup{dir: t.TempDir(), nRanks: 1, curStep: map[int64]*fileStep{}}
	st := &fileStep{step: 0, done: make(chan struct{})}
	shape := []int64{8}
	st.records = []fileRecord{{
		meta: core.VarMeta{Name: "v", Kind: core.GlobalArrayVar, ElemSize: 8,
			GlobalShape: shape, Box: ndarray.BoxFromShape(shape)},
		data: bytes.Repeat([]byte{1}, 64),
	}}
	if err := g.writeStepFile(st); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(g.dir + "/step-000000.bp")
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(bpMagic); cut < len(raw)-1; cut += 7 {
		if _, err := parseBP(raw[:cut]); err == nil {
			t.Fatalf("truncation at %d parsed", cut)
		}
	}
}

func TestFilePluginRejected(t *testing.T) {
	ctx := newTestContext(t, `<adios-config><io name="o"><engine type="file"/></io></adios-config>`)
	io, _ := ctx.DeclareIO("o")
	// The writer goroutine must not outlive the test: if it did, its
	// OpenWriter would race the framework's TempDir cleanup (and a failed
	// open would nil-deref in BeginStep). Synchronize on completion and
	// surface any error through the channel.
	writerDone := make(chan error, 1)
	go func() {
		wr, err := io.OpenWriter("pr", 0, 1)
		if err != nil {
			writerDone <- err
			return
		}
		wr.BeginStep(0)
		wr.EndStep()
		writerDone <- wr.Close()
	}()
	defer func() {
		if err := <-writerDone; err != nil {
			t.Errorf("writer goroutine: %v", err)
		}
	}()
	rd, err := io.OpenReader("pr", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := rd.InstallPlugin(dcplugin.SamplePlugin(2)); err == nil {
		t.Fatal("file engine must reject plug-ins")
	}
}

func TestOpenWriterRankMismatch(t *testing.T) {
	ctx := newTestContext(t, "")
	io, _ := ctx.DeclareIO("g")
	if _, err := io.OpenWriter("mm", 0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := io.OpenWriter("mm", 1, 3); err == nil {
		t.Fatal("rank-count mismatch must fail")
	}
}

func TestDeclareIOUnknownDefaultsToStream(t *testing.T) {
	ctx := newTestContext(t, testConfigXML)
	io, err := ctx.DeclareIO("not-in-config")
	if err != nil {
		t.Fatal(err)
	}
	if io.Engine() != "stream" {
		t.Fatalf("engine = %q", io.Engine())
	}
}

func TestAdiosPluginDeploymentAndMonitoring(t *testing.T) {
	ctx := newTestContext(t, "")
	ctx.Monitor = monitor.New("ctx")
	io, _ := ctx.DeclareIO("plugmon")

	// The writer must open first (it registers the stream), but only
	// starts writing once the reader has deployed its plug-in.
	wr, err := io.OpenWriter("pm", 0, 1)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	deployed := make(chan struct{})
	go func() {
		defer wg.Done()
		rd, err := io.OpenReader("pm", 0, 1)
		if err != nil {
			t.Errorf("open reader: %v", err)
			close(deployed)
			return
		}
		if err := rd.SelectProcessGroups([]int{0}); err != nil {
			t.Error(err)
			close(deployed)
			return
		}
		// Deploy a sampler into the writer before data flows.
		if err := rd.DeployPluginToWriters(dcplugin.SamplePlugin(4)); err != nil {
			t.Errorf("deploy: %v", err)
			close(deployed)
			return
		}
		close(deployed)
		for {
			_, ok := rd.BeginStep()
			if !ok {
				break
			}
			groups, err := rd.ReadProcessGroups("p")
			if err != nil {
				t.Error(err)
				return
			}
			if n := len(dcplugin.BytesToFloats(groups[0])); n != 16 {
				t.Errorf("writer-side conditioning missing: %d values", n)
			}
			rd.EndStep()
			// The monitoring report for this step arrives asynchronously.
			for i := 0; i < 200; i++ {
				if _, _, ok := rd.WriterReport(); ok {
					break
				}
				time.Sleep(time.Millisecond)
			}
		}
		if _, _, ok := rd.WriterReport(); !ok {
			t.Error("no writer monitoring report at the adios layer")
		}
		rd.Close()
	}()

	<-deployed
	wr.BeginStep(0)
	if err := wr.WriteProcessGroup("p", 8, dcplugin.FloatsToBytes(make([]float64, 64))); err != nil {
		t.Fatal(err)
	}
	wr.EndStep()
	wr.Close()
	wg.Wait()
}

package adios

import (
	"fmt"
	"sync"

	"flexio/internal/core"
	"flexio/internal/dcplugin"
	"flexio/internal/directory"
	"flexio/internal/evpath"
	"flexio/internal/monitor"
	"flexio/internal/ndarray"
)

// Context is the process-wide ADIOS/FlexIO environment: the connection
// manager, the directory service, and the root path used by file-mode
// engines. One Context is shared by all ranks in this process.
type Context struct {
	Net     *evpath.Net
	Dir     directory.Directory
	FSRoot  string // directory for file-mode output (the "parallel FS")
	Monitor *monitor.Monitor

	mu     sync.Mutex
	config *Config
	opens  *openState
}

// NewContext builds a context. cfg may be nil (every IO defaults to the
// stream engine with default options).
func NewContext(net *evpath.Net, dir directory.Directory, fsRoot string, cfg *Config) *Context {
	return &Context{Net: net, Dir: dir, FSRoot: fsRoot, config: cfg, opens: newOpenState()}
}

// DeclareIO resolves an IO group by name against the configuration; an
// unconfigured name gets the stream engine with defaults (matching ADIOS's
// behaviour for unlisted groups).
func (c *Context) DeclareIO(name string) (*IO, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var ioc *IOConfig
	if c.config != nil {
		ioc = c.config.IOs[name]
	}
	if ioc == nil {
		ioc = &IOConfig{Name: name, Engine: "stream", Params: map[string]string{}}
	}
	opts, err := ioc.coreOptions()
	if err != nil {
		return nil, err
	}
	return &IO{ctx: c, cfg: ioc, opts: opts}, nil
}

// IO is a named I/O group bound to an engine choice.
type IO struct {
	ctx  *Context
	cfg  *IOConfig
	opts core.Options
}

// Engine reports the configured engine ("stream" or "file").
func (io *IO) Engine() string { return io.cfg.Engine }

// SetTransport overrides the placement-to-transport mapping (stream
// engine only); this is the hook FlexIO's placement machinery uses to
// enforce a chosen placement.
func (io *IO) SetTransport(fn func(w, r int) (evpath.TransportKind, int, int)) {
	io.opts.Transport = fn
}

// writerEngine and readerEngine are the per-rank engine contracts; both
// the stream engine (FlexIO runtime) and the file engine implement them,
// which is what makes placement (online vs. offline) switchable without
// application change.
type writerEngine interface {
	BeginStep(step int64) error
	Write(meta core.VarMeta, data []byte) error
	EndStep() error
	Close() error
}

type readerEngine interface {
	SelectArray(name string, box ndarray.Box) error
	SelectProcessGroups(writers []int) error
	BeginStep() (int64, bool)
	ReadArray(name string) ([]byte, ndarray.Box, error)
	ReadScalar(name string) ([]byte, error)
	ReadProcessGroups(name string) (map[int][]byte, error)
	EndStep() error
	Close() error
}

// Writer is one rank's write handle on an open stream/file.
type Writer struct {
	eng  writerEngine
	Rank int
}

// Reader is one rank's read handle.
type Reader struct {
	eng  readerEngine
	Rank int
}

// openState tracks the per-stream shared group between ranks of one
// program, so OpenWriter can be called once per rank. Group construction
// can block (a reader group waits for the stream's registration), so
// entries are once-guarded futures: the map lock is never held across a
// blocking constructor.
type openState struct {
	mu      sync.Mutex
	wgroups map[string]*wEntry
	rgroups map[string]*rEntry
	fwriter map[string]*fileWriterGroup
	freader map[string]*fileReaderGroup
}

type wEntry struct {
	once   sync.Once
	g      *core.WriterGroup
	err    error
	mu     sync.Mutex
	closes int
}

type rEntry struct {
	once   sync.Once
	g      *core.ReaderGroup
	err    error
	mu     sync.Mutex
	closes int
}

func newOpenState() *openState {
	return &openState{
		wgroups: make(map[string]*wEntry),
		rgroups: make(map[string]*rEntry),
		fwriter: make(map[string]*fileWriterGroup),
		freader: make(map[string]*fileReaderGroup),
	}
}

// OpenWriter opens (or joins) the writer side of a stream for one rank.
// All ranks of the program must call it with identical arguments.
func (io *IO) OpenWriter(stream string, rank, nRanks int) (*Writer, error) {
	key := io.ctx.FSRoot + "|" + stream
	switch io.cfg.Engine {
	case "stream":
		opens := io.ctx.opens
		opens.mu.Lock()
		e, ok := opens.wgroups[key]
		if !ok {
			e = &wEntry{}
			opens.wgroups[key] = e
		}
		opens.mu.Unlock()
		e.once.Do(func() {
			e.g, e.err = core.NewWriterGroup(io.ctx.Net, io.ctx.Dir, stream, nRanks, io.opts, io.ctx.Monitor)
		})
		if e.err != nil {
			return nil, e.err
		}
		g := e.g
		if g.NWriters != nRanks {
			return nil, fmt.Errorf("adios: stream %q opened with %d ranks, rank %d says %d",
				stream, g.NWriters, rank, nRanks)
		}
		return &Writer{eng: &streamWriter{g: g, w: g.Writer(rank), stream: stream, key: key, opens: opens, entry: e}, Rank: rank}, nil
	case "file":
		opens := io.ctx.opens
		opens.mu.Lock()
		g, ok := opens.fwriter[key]
		if !ok {
			var err error
			g, err = newFileWriterGroup(io.ctx.FSRoot, stream, nRanks)
			if err != nil {
				opens.mu.Unlock()
				return nil, err
			}
			opens.fwriter[key] = g
		}
		opens.mu.Unlock()
		return &Writer{eng: &fileWriter{g: g, rank: rank}, Rank: rank}, nil
	}
	return nil, fmt.Errorf("adios: unknown engine %q", io.cfg.Engine)
}

// OpenReader opens (or joins) the reader side of a stream for one rank.
func (io *IO) OpenReader(stream string, rank, nRanks int) (*Reader, error) {
	key := io.ctx.FSRoot + "|" + stream
	switch io.cfg.Engine {
	case "stream":
		opens := io.ctx.opens
		opens.mu.Lock()
		e, ok := opens.rgroups[key]
		if !ok {
			e = &rEntry{}
			opens.rgroups[key] = e
		}
		opens.mu.Unlock()
		e.once.Do(func() {
			e.g, e.err = core.NewReaderGroup(io.ctx.Net, io.ctx.Dir, stream, nRanks, io.ctx.Monitor)
		})
		if e.err != nil {
			return nil, e.err
		}
		g := e.g
		if g.NReaders != nRanks {
			return nil, fmt.Errorf("adios: stream %q opened with %d ranks, rank %d says %d",
				stream, g.NReaders, rank, nRanks)
		}
		return &Reader{eng: &streamReader{g: g, r: g.Reader(rank), key: key, opens: opens, entry: e}, Rank: rank}, nil
	case "file":
		opens := io.ctx.opens
		opens.mu.Lock()
		g, ok := opens.freader[key]
		if !ok {
			g = newFileReaderGroup(io.ctx.FSRoot, stream, nRanks)
			opens.freader[key] = g
		}
		opens.mu.Unlock()
		return &Reader{eng: newFileReader(g, rank), Rank: rank}, nil
	}
	return nil, fmt.Errorf("adios: unknown engine %q", io.cfg.Engine)
}

// InstallPlugin deploys a data-conditioning plug-in onto this IO's reader
// group (stream engine): its source is compiled here and applied to every
// arriving event.
func (r *Reader) InstallPlugin(p dcplugin.Plugin) error {
	sr, ok := r.eng.(*streamReader)
	if !ok {
		return fmt.Errorf("adios: plug-ins require the stream engine")
	}
	fn, err := p.Filter()
	if err != nil {
		return err
	}
	sr.g.InstallNamedPlugin(p.Name, fn)
	return nil
}

// DeployPluginToWriters ships the plug-in's source into the writer
// program's address space over the coordinator channel, where it is
// compiled and applied to data before it crosses the transport (Section
// II.F runtime deployment). Stream engine only.
func (r *Reader) DeployPluginToWriters(p dcplugin.Plugin) error {
	sr, ok := r.eng.(*streamReader)
	if !ok {
		return fmt.Errorf("adios: plug-in deployment requires the stream engine")
	}
	return sr.g.DeployPluginToWriters(p)
}

// MigratePluginToWriters moves a reader-side plug-in into the writers'
// address space at runtime.
func (r *Reader) MigratePluginToWriters(p dcplugin.Plugin) error {
	sr, ok := r.eng.(*streamReader)
	if !ok {
		return fmt.Errorf("adios: plug-in migration requires the stream engine")
	}
	return sr.g.MigratePluginToWriters(p)
}

// WriterReport returns the most recent performance-monitoring report the
// simulation side shipped over the coordinator channel (Section II.G
// online monitoring). Stream engine only.
func (r *Reader) WriterReport() (monitor.Report, int64, bool) {
	sr, ok := r.eng.(*streamReader)
	if !ok {
		return monitor.Report{}, 0, false
	}
	return sr.g.WriterReport()
}

// --- Writer API (typed convenience over the engine) ---

// BeginStep starts a timestep.
func (w *Writer) BeginStep(step int64) error { return w.eng.BeginStep(step) }

// EndStep completes the rank's step.
func (w *Writer) EndStep() error { return w.eng.EndStep() }

// Close ends the stream for this rank's group (idempotent; the last
// close wins).
func (w *Writer) Close() error { return w.eng.Close() }

// WriteFloat64s writes a float64 global array region.
func (w *Writer) WriteFloat64s(name string, globalShape []int64, box ndarray.Box, data []float64) error {
	return w.eng.Write(core.VarMeta{
		Name: name, Kind: core.GlobalArrayVar, ElemSize: 8,
		GlobalShape: globalShape, Box: box,
	}, dcplugin.FloatsToBytes(data))
}

// WriteBytes writes a raw global array region.
func (w *Writer) WriteBytes(name string, elemSize int, globalShape []int64, box ndarray.Box, data []byte) error {
	return w.eng.Write(core.VarMeta{
		Name: name, Kind: core.GlobalArrayVar, ElemSize: elemSize,
		GlobalShape: globalShape, Box: box,
	}, data)
}

// WriteProcessGroup writes this rank's opaque per-process block.
func (w *Writer) WriteProcessGroup(name string, elemSize int, data []byte) error {
	return w.eng.Write(core.VarMeta{Name: name, Kind: core.ProcessGroupVar, ElemSize: elemSize}, data)
}

// WriteScalarFloat64 writes a scalar (rank 0 broadcasts it).
func (w *Writer) WriteScalarFloat64(name string, v float64) error {
	return w.eng.Write(core.VarMeta{Name: name, Kind: core.ScalarVar, ElemSize: 8},
		dcplugin.FloatsToBytes([]float64{v}))
}

// --- Reader API ---

// SelectArray declares the region of a global array this rank reads.
func (r *Reader) SelectArray(name string, box ndarray.Box) error {
	return r.eng.SelectArray(name, box)
}

// SelectProcessGroups declares which writer ranks' groups this rank reads.
func (r *Reader) SelectProcessGroups(writers []int) error {
	return r.eng.SelectProcessGroups(writers)
}

// BeginStep blocks for the next step; ok=false at End-of-Stream.
func (r *Reader) BeginStep() (int64, bool) { return r.eng.BeginStep() }

// EndStep releases the current step.
func (r *Reader) EndStep() error { return r.eng.EndStep() }

// Close hangs up.
func (r *Reader) Close() error { return r.eng.Close() }

// ReadFloat64s reads the rank's selection of a float64 global array.
func (r *Reader) ReadFloat64s(name string) ([]float64, ndarray.Box, error) {
	raw, box, err := r.eng.ReadArray(name)
	if err != nil {
		return nil, box, err
	}
	return dcplugin.BytesToFloats(raw), box, nil
}

// ReadBytes reads the rank's selection as raw bytes.
func (r *Reader) ReadBytes(name string) ([]byte, ndarray.Box, error) {
	return r.eng.ReadArray(name)
}

// ReadScalarFloat64 reads a scalar.
func (r *Reader) ReadScalarFloat64(name string) (float64, error) {
	raw, err := r.eng.ReadScalar(name)
	if err != nil {
		return 0, err
	}
	fs := dcplugin.BytesToFloats(raw)
	if len(fs) == 0 {
		return 0, fmt.Errorf("adios: scalar %q empty", name)
	}
	return fs[0], nil
}

// ReadProcessGroups reads claimed per-writer blocks.
func (r *Reader) ReadProcessGroups(name string) (map[int][]byte, error) {
	return r.eng.ReadProcessGroups(name)
}

// --- stream engine adapters ---

type streamWriter struct {
	g      *core.WriterGroup
	w      *core.Writer
	stream string
	key    string
	opens  *openState
	entry  *wEntry
}

func (s *streamWriter) BeginStep(step int64) error              { return s.w.BeginStep(step) }
func (s *streamWriter) Write(m core.VarMeta, data []byte) error { return s.w.Write(m, data) }
func (s *streamWriter) EndStep() error                          { return s.w.EndStep() }

// Close is collective: the stream shuts down (sending End-of-Stream to
// readers) once every writer rank has closed its handle.
func (s *streamWriter) Close() error {
	s.entry.mu.Lock()
	s.entry.closes++
	last := s.entry.closes == s.g.NWriters
	s.entry.mu.Unlock()
	if !last {
		return nil
	}
	s.opens.mu.Lock()
	delete(s.opens.wgroups, s.key)
	s.opens.mu.Unlock()
	return s.g.Close()
}

type streamReader struct {
	g     *core.ReaderGroup
	r     *core.Reader
	key   string
	opens *openState
	entry *rEntry
}

func (s *streamReader) SelectArray(name string, box ndarray.Box) error {
	return s.r.SelectArray(name, box)
}
func (s *streamReader) SelectProcessGroups(writers []int) error {
	return s.r.SelectProcessGroups(writers)
}
func (s *streamReader) BeginStep() (int64, bool) { return s.r.BeginStep() }
func (s *streamReader) ReadArray(name string) ([]byte, ndarray.Box, error) {
	return s.r.ReadArray(name)
}
func (s *streamReader) ReadScalar(name string) ([]byte, error) { return s.r.ReadScalar(name) }
func (s *streamReader) ReadProcessGroups(name string) (map[int][]byte, error) {
	return s.r.ReadProcessGroups(name)
}
func (s *streamReader) EndStep() error { return s.r.EndStep() }

// Close is collective, mirroring the writer side.
func (s *streamReader) Close() error {
	s.entry.mu.Lock()
	s.entry.closes++
	last := s.entry.closes == s.g.NReaders
	s.entry.mu.Unlock()
	if !last {
		return nil
	}
	s.opens.mu.Lock()
	delete(s.opens.rgroups, s.key)
	s.opens.mu.Unlock()
	return s.g.Close()
}

// Package adios reimplements the slice of the ADIOS I/O library that
// FlexIO builds on (Section II.A/B of the paper): a metadata-rich
// read/write API over named IO groups, with the I/O *method* selected
// through an external XML configuration file — so applications switch
// between file I/O and FlexIO's online stream transports, or tune
// transport parameters (caching, batching, async), without touching
// source code. "A one-line update to the configuration file is
// sufficient to switch between file I/O and online data movement."
//
// Two engines are provided:
//
//   - "stream": memory-to-memory movement through the FlexIO runtime
//     (internal/core) — the paper's new stream mode;
//   - "file": a BP-like self-describing container on the file system —
//     the backwards-compatible file mode that also enables offline
//     analytics placement.
package adios

import (
	"encoding/xml"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"flexio/internal/core"
	"flexio/internal/evpath"
)

// Config mirrors the adios-config XML document.
type Config struct {
	IOs map[string]*IOConfig
}

// IOConfig configures one IO group (one logical output stream).
type IOConfig struct {
	Name   string
	Engine string            // "stream" or "file"
	Params map[string]string // engine hints (caching, batching, async, ...)
}

type xmlConfig struct {
	XMLName xml.Name `xml:"adios-config"`
	IOs     []struct {
		Name   string `xml:"name,attr"`
		Engine struct {
			Type   string `xml:"type,attr"`
			Params []struct {
				Name  string `xml:"name,attr"`
				Value string `xml:"value,attr"`
			} `xml:"parameter"`
		} `xml:"engine"`
	} `xml:"io"`
}

// ParseConfig reads an adios-config XML document.
func ParseConfig(r io.Reader) (*Config, error) {
	var doc xmlConfig
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("adios: parsing config: %w", err)
	}
	cfg := &Config{IOs: make(map[string]*IOConfig)}
	for _, io := range doc.IOs {
		if io.Name == "" {
			return nil, fmt.Errorf("adios: io element without name")
		}
		if _, dup := cfg.IOs[io.Name]; dup {
			return nil, fmt.Errorf("adios: duplicate io %q", io.Name)
		}
		engine := io.Engine.Type
		if engine == "" {
			engine = "stream"
		}
		if engine != "stream" && engine != "file" {
			return nil, fmt.Errorf("adios: io %q: unknown engine %q", io.Name, engine)
		}
		ioc := &IOConfig{Name: io.Name, Engine: engine, Params: make(map[string]string)}
		for _, p := range io.Engine.Params {
			ioc.Params[strings.ToLower(p.Name)] = p.Value
		}
		cfg.IOs[io.Name] = ioc
	}
	return cfg, nil
}

// LoadConfig parses an XML config file from disk.
func LoadConfig(path string) (*Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseConfig(f)
}

// coreOptions translates engine hints into FlexIO runtime options.
func (c *IOConfig) coreOptions() (core.Options, error) {
	var opts core.Options
	for k, v := range c.Params {
		switch k {
		case "caching":
			switch strings.ToUpper(v) {
			case "NO_CACHING":
				opts.Caching = core.NoCaching
			case "CACHING_LOCAL":
				opts.Caching = core.CachingLocal
			case "CACHING_ALL":
				opts.Caching = core.CachingAll
			default:
				return opts, fmt.Errorf("adios: io %q: bad caching %q", c.Name, v)
			}
		case "batching":
			b, err := strconv.ParseBool(v)
			if err != nil {
				return opts, fmt.Errorf("adios: io %q: bad batching %q", c.Name, v)
			}
			opts.Batching = b
		case "async":
			b, err := strconv.ParseBool(v)
			if err != nil {
				return opts, fmt.Errorf("adios: io %q: bad async %q", c.Name, v)
			}
			opts.Async = b
		case "queue_depth":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return opts, fmt.Errorf("adios: io %q: bad queue_depth %q", c.Name, v)
			}
			opts.AsyncQueueDepth = n
		case "transport":
			// "shm", "rdma", "chan", or "auto" — "auto" leaves the
			// decision to the placement function supplied at open time.
			switch strings.ToLower(v) {
			case "shm":
				opts.Transport = func(w, r int) (evpath.TransportKind, int, int) {
					return evpath.ShmTransport, 0, 0
				}
			case "rdma":
				opts.Transport = func(w, r int) (evpath.TransportKind, int, int) {
					return evpath.RDMATransport, w, (1 << 20) + r // distinct node space
				}
			case "chan", "auto":
				// defaults
			default:
				return opts, fmt.Errorf("adios: io %q: bad transport %q", c.Name, v)
			}
		default:
			return opts, fmt.Errorf("adios: io %q: unknown parameter %q", c.Name, k)
		}
	}
	return opts, nil
}

// Package machine models the target HPC platforms of the FlexIO paper:
// ORNL's Titan (Cray XK6, Gemini interconnect) and the Smoky InfiniBand
// cluster. The paper's placement algorithms consume a machine description
// both as flat parameters (bandwidths, latencies, core counts) and as a
// hierarchical architecture tree (node -> socket/NUMA -> core) used for
// graph mapping. Since no Cray or InfiniBand hardware exists here, the
// models are calibrated from the machine specifications quoted in Section
// IV of the paper and public system documentation.
package machine

import "fmt"

// NodeArch describes one compute node: cores, NUMA layout, caches, and
// intra-node communication costs. It corresponds to Figure 5 of the paper
// (a multi-socket NUMA node).
type NodeArch struct {
	Name         string
	Cores        int     // total cores per node
	NUMADomains  int     // NUMA domains per node
	CoresPerNUMA int     // Cores / NUMADomains
	L3PerNUMA    int64   // shared last-level cache per NUMA domain, bytes
	MemoryBytes  int64   // DRAM per node
	CoreGHz      float64 // nominal clock
	// Shared-memory transport costs (used by the coupled-run simulator for
	// on-node data movement through FlexIO's shm queues).
	IntraNUMABandwidth float64 // bytes/sec for same-NUMA memcpy-style movement
	InterNUMABandwidth float64 // bytes/sec crossing NUMA domains
	IntraNUMALatency   float64 // seconds per message
	InterNUMALatency   float64 // seconds per message
}

// Interconnect describes the inter-node network and its RDMA cost model.
type Interconnect struct {
	Name          string
	LinkBandwidth float64 // bytes/sec point-to-point RDMA Get/Put payload bandwidth
	Latency       float64 // seconds, small-message one-way
	// Memory registration cost model: registering an RDMA buffer costs
	// RegBase + ceil(size/PageSize) * RegPerPage seconds. Dynamic
	// allocation adds AllocBase + pages * AllocPerPage. These reproduce
	// the dynamic-vs-static gap of Figure 4.
	RegBase      float64
	RegPerPage   float64
	AllocBase    float64
	AllocPerPage float64
	PageSize     int64
	// SmallMsgOverhead is the per-message software cost (progress engine,
	// completion handling) on top of wire latency; it dominates
	// handshake phases that serialize at a coordinator rank.
	SmallMsgOverhead float64
	// InjectionBandwidth caps the aggregate rate one node can push into
	// the network (NIC limit); contention among concurrent flows on a
	// node shares this.
	InjectionBandwidth float64
	// BisectionBandwidth caps aggregate machine-wide traffic; bulk
	// asynchronous staging flows contend here with application MPI
	// traffic, which is what forces the Get-scheduling policy in the
	// paper ("keep the GTS slowdown under 15%").
	BisectionBandwidth float64
}

// FileSystem models the shared parallel file system (Lustre in the paper).
type FileSystem struct {
	Name               string
	AggregateBandwidth float64 // bytes/sec across the whole machine
	PerClientBandwidth float64 // bytes/sec ceiling for one writer process
	OpenCost           float64 // seconds per file open/create (metadata)
}

// Machine is a complete platform model.
type Machine struct {
	Name     string
	NumNodes int
	Node     NodeArch
	Net      Interconnect
	FS       FileSystem
}

// TotalCores reports the machine's total core count.
func (m *Machine) TotalCores() int { return m.NumNodes * m.Node.Cores }

// NodeOfCore maps a global core id to its node index.
func (m *Machine) NodeOfCore(core int) int { return core / m.Node.Cores }

// NUMAOfCore maps a global core id to its (node-local) NUMA domain index.
func (m *Machine) NUMAOfCore(core int) int {
	return (core % m.Node.Cores) / m.Node.CoresPerNUMA
}

// SameNode reports whether two global core ids live on one node.
func (m *Machine) SameNode(a, b int) bool { return m.NodeOfCore(a) == m.NodeOfCore(b) }

// SameNUMA reports whether two global core ids share a NUMA domain.
func (m *Machine) SameNUMA(a, b int) bool {
	return m.SameNode(a, b) && m.NUMAOfCore(a) == m.NUMAOfCore(b)
}

// Validate checks internal consistency of the model.
func (m *Machine) Validate() error {
	n := m.Node
	if n.Cores <= 0 || n.NUMADomains <= 0 {
		return fmt.Errorf("machine %s: non-positive core/NUMA counts", m.Name)
	}
	if n.Cores%n.NUMADomains != 0 {
		return fmt.Errorf("machine %s: %d cores not divisible by %d NUMA domains", m.Name, n.Cores, n.NUMADomains)
	}
	if n.CoresPerNUMA != n.Cores/n.NUMADomains {
		return fmt.Errorf("machine %s: CoresPerNUMA %d != %d/%d", m.Name, n.CoresPerNUMA, n.Cores, n.NUMADomains)
	}
	if m.NumNodes <= 0 {
		return fmt.Errorf("machine %s: NumNodes %d", m.Name, m.NumNodes)
	}
	if m.Net.LinkBandwidth <= 0 || m.Net.PageSize <= 0 {
		return fmt.Errorf("machine %s: invalid interconnect model", m.Name)
	}
	return nil
}

// WithNodes returns a copy of the machine scaled to n nodes; experiments
// use this to run weak-scaling sweeps on one preset.
func (m *Machine) WithNodes(n int) *Machine {
	c := *m
	c.NumNodes = n
	return &c
}

// Titan returns a model of ORNL Titan as described in Section IV: Cray
// XK6, 16-core 2.2 GHz AMD Opteron 6274 (Interlagos) per node with two
// NUMA domains of 8 cores, 32 GB RAM, Gemini interconnect. Bandwidth and
// latency figures follow published Gemini microbenchmarks (~5 GB/s
// point-to-point payload bandwidth, ~1.5 us latency).
func Titan(nodes int) *Machine {
	return &Machine{
		Name:     "Titan",
		NumNodes: nodes,
		Node: NodeArch{
			Name:               "XK6-Interlagos",
			Cores:              16,
			NUMADomains:        2,
			CoresPerNUMA:       8,
			L3PerNUMA:          8 << 20, // 8 MB shared L3 per die
			MemoryBytes:        32 << 30,
			CoreGHz:            2.2,
			IntraNUMABandwidth: 12.0e9,
			InterNUMABandwidth: 8.0e9,
			IntraNUMALatency:   0.2e-6,
			InterNUMALatency:   0.6e-6,
		},
		Net: Interconnect{
			Name:               "Gemini",
			LinkBandwidth:      5.0e9,
			Latency:            1.5e-6,
			RegBase:            12e-6,
			RegPerPage:         0.08e-6,
			AllocBase:          6e-6,
			AllocPerPage:       0.04e-6,
			PageSize:           4096,
			SmallMsgOverhead:   12e-6,
			InjectionBandwidth: 6.0e9,
			BisectionBandwidth: float64(nodes) * 2.0e9,
		},
		FS: FileSystem{
			Name:               "Lustre(center-wide)",
			AggregateBandwidth: 40e9,
			PerClientBandwidth: 0.4e9,
			OpenCost:           3e-3,
		},
	}
}

// Smoky returns a model of the ORNL Smoky cluster: 80 nodes, four
// quad-core 2.0 GHz AMD Opteron (Barcelona) sockets per node — the Figure
// 5 topology with four NUMA domains and a shared L3 per socket — and DDR
// InfiniBand (~1.5 GB/s payload bandwidth).
func Smoky(nodes int) *Machine {
	if nodes <= 0 || nodes > 80 {
		nodes = 80
	}
	return &Machine{
		Name:     "Smoky",
		NumNodes: nodes,
		Node: NodeArch{
			Name:               "Barcelona-4S",
			Cores:              16,
			NUMADomains:        4,
			CoresPerNUMA:       4,
			L3PerNUMA:          2 << 20, // 2 MB shared L3 per Barcelona socket
			MemoryBytes:        32 << 30,
			CoreGHz:            2.0,
			IntraNUMABandwidth: 6.0e9,
			InterNUMABandwidth: 3.0e9,
			IntraNUMALatency:   0.25e-6,
			InterNUMALatency:   0.9e-6,
		},
		Net: Interconnect{
			Name:               "DDR-InfiniBand",
			LinkBandwidth:      1.5e9,
			Latency:            3.0e-6,
			RegBase:            25e-6,
			RegPerPage:         0.25e-6,
			AllocBase:          8e-6,
			AllocPerPage:       0.10e-6,
			PageSize:           4096,
			SmallMsgOverhead:   40e-6,
			InjectionBandwidth: 1.6e9,
			BisectionBandwidth: float64(nodes) * 0.8e9,
		},
		FS: FileSystem{
			Name:               "Lustre",
			AggregateBandwidth: 10e9,
			PerClientBandwidth: 0.3e9,
			OpenCost:           3e-3,
		},
	}
}

// ByName returns a preset machine by (case-sensitive) name.
func ByName(name string, nodes int) (*Machine, error) {
	switch name {
	case "Titan", "titan":
		return Titan(nodes), nil
	case "Smoky", "smoky":
		return Smoky(nodes), nil
	}
	return nil, fmt.Errorf("machine: unknown preset %q (want Titan or Smoky)", name)
}

package machine

import "fmt"

// ArchTree is the hierarchical architecture model consumed by the graph
// mapping algorithms in internal/placement. The paper's holistic placement
// models the machine as a two-level tree (node -> core); node-topology-
// aware placement extends it to a multi-level hierarchy that reflects the
// cache topology (node -> NUMA domain -> core). Leaves are cores, numbered
// globally in the same order as Machine core ids.
type ArchTree struct {
	// LevelNames[0] is the root level ("machine"); the last level is
	// "core" (the leaves).
	LevelNames []string
	// Arity[i] is the number of children each level-i vertex has (for
	// i < len-1). The number of leaves is the product of all arities.
	Arity []int
	// CrossCost[i] is the relative communication cost between two leaves
	// whose lowest common ancestor is at level i. CrossCost must be
	// non-increasing from root to leaf parents: crossing the machine
	// level (inter-node) is the most expensive.
	CrossCost []float64
}

// NumLeaves reports the number of cores covered by the tree.
func (t *ArchTree) NumLeaves() int {
	n := 1
	for _, a := range t.Arity {
		n *= a
	}
	return n
}

// Levels reports the number of internal levels (root included).
func (t *ArchTree) Levels() int { return len(t.Arity) }

// Validate checks structural consistency.
func (t *ArchTree) Validate() error {
	if len(t.Arity) == 0 {
		return fmt.Errorf("archtree: no levels")
	}
	if len(t.LevelNames) != len(t.Arity)+1 {
		return fmt.Errorf("archtree: %d names for %d arity levels", len(t.LevelNames), len(t.Arity))
	}
	if len(t.CrossCost) != len(t.Arity) {
		return fmt.Errorf("archtree: %d costs for %d levels", len(t.CrossCost), len(t.Arity))
	}
	for i, a := range t.Arity {
		if a <= 0 {
			return fmt.Errorf("archtree: level %d arity %d", i, a)
		}
	}
	for i := 1; i < len(t.CrossCost); i++ {
		if t.CrossCost[i] > t.CrossCost[i-1] {
			return fmt.Errorf("archtree: cost must not increase with depth: level %d cost %g > level %d cost %g",
				i, t.CrossCost[i], i-1, t.CrossCost[i-1])
		}
	}
	return nil
}

// LCA returns the level of the lowest common ancestor of two leaves:
// 0 means they only share the machine root (different nodes); Levels()
// means a == b (same core).
func (t *ArchTree) LCA(a, b int) int {
	if a == b {
		return t.Levels()
	}
	// Group size at level i is the product of arities below level i.
	group := t.NumLeaves()
	for lvl := 0; lvl < len(t.Arity); lvl++ {
		group /= t.Arity[lvl]
		if a/group != b/group {
			return lvl
		}
	}
	return t.Levels()
}

// LeafDistance returns the relative cost of communication between two
// leaf cores: CrossCost at their lowest common ancestor level, and 0 for
// the same core.
func (t *ArchTree) LeafDistance(a, b int) float64 {
	lvl := t.LCA(a, b)
	if lvl >= t.Levels() {
		return 0
	}
	return t.CrossCost[lvl]
}

// TwoLevelTree builds the paper's holistic-placement machine model: cores
// of the same node are siblings with lower communication cost than cores
// on different nodes. nodes*coresPerNode leaves.
func TwoLevelTree(nodes, coresPerNode int, interNodeCost, intraNodeCost float64) *ArchTree {
	return &ArchTree{
		LevelNames: []string{"machine", "node", "core"},
		Arity:      []int{nodes, coresPerNode},
		CrossCost:  []float64{interNodeCost, intraNodeCost},
	}
}

// Tree derives the architecture tree for a machine. If topoAware is false
// the result is the two-level (node, core) model used by holistic
// placement; if true, the NUMA level is inserted so that the mapper can
// respect the cache topology (node-topology-aware placement).
// Cross-level costs are normalized seconds-per-megabyte derived from the
// machine's bandwidth model, so that mapping objectives are comparable
// across machines.
func (m *Machine) Tree(topoAware bool) *ArchTree {
	const mb = 1 << 20
	interNode := float64(mb) / m.Net.LinkBandwidth
	interNUMA := float64(mb) / m.Node.InterNUMABandwidth
	intraNUMA := float64(mb) / m.Node.IntraNUMABandwidth
	if !topoAware {
		return TwoLevelTree(m.NumNodes, m.Node.Cores, interNode, interNUMA)
	}
	return &ArchTree{
		LevelNames: []string{"machine", "node", "numa", "core"},
		Arity:      []int{m.NumNodes, m.Node.NUMADomains, m.Node.CoresPerNUMA},
		CrossCost:  []float64{interNode, interNUMA, intraNUMA},
	}
}

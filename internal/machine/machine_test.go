package machine

import (
	"testing"
	"testing/quick"
)

func TestPresetsValidate(t *testing.T) {
	for _, m := range []*Machine{Titan(128), Smoky(80)} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestTitanTopology(t *testing.T) {
	m := Titan(4)
	if got := m.TotalCores(); got != 64 {
		t.Fatalf("TotalCores = %d, want 64", got)
	}
	if m.Node.NUMADomains != 2 || m.Node.CoresPerNUMA != 8 {
		t.Fatalf("Titan node should be 2 NUMA x 8 cores, got %d x %d",
			m.Node.NUMADomains, m.Node.CoresPerNUMA)
	}
}

func TestSmokyTopology(t *testing.T) {
	m := Smoky(80)
	// Figure 5: four quad-core sockets, each with its own shared L3.
	if m.Node.NUMADomains != 4 || m.Node.CoresPerNUMA != 4 {
		t.Fatalf("Smoky node should be 4 NUMA x 4 cores, got %d x %d",
			m.Node.NUMADomains, m.Node.CoresPerNUMA)
	}
	if m.NumNodes != 80 {
		t.Fatalf("Smoky has 80 nodes, got %d", m.NumNodes)
	}
}

func TestSmokyNodeClamp(t *testing.T) {
	if got := Smoky(500).NumNodes; got != 80 {
		t.Fatalf("Smoky must clamp to 80 nodes, got %d", got)
	}
	if got := Smoky(0).NumNodes; got != 80 {
		t.Fatalf("Smoky(0) should default to 80, got %d", got)
	}
}

func TestCoreMapping(t *testing.T) {
	m := Smoky(2) // 16 cores/node, 4 per NUMA
	cases := []struct {
		core, node, numa int
	}{
		{0, 0, 0}, {3, 0, 0}, {4, 0, 1}, {15, 0, 3}, {16, 1, 0}, {21, 1, 1},
	}
	for _, c := range cases {
		if got := m.NodeOfCore(c.core); got != c.node {
			t.Errorf("NodeOfCore(%d) = %d, want %d", c.core, got, c.node)
		}
		if got := m.NUMAOfCore(c.core); got != c.numa {
			t.Errorf("NUMAOfCore(%d) = %d, want %d", c.core, got, c.numa)
		}
	}
	if !m.SameNUMA(0, 3) || m.SameNUMA(3, 4) || m.SameNode(15, 16) {
		t.Error("SameNUMA/SameNode misclassification")
	}
}

func TestByName(t *testing.T) {
	if m, err := ByName("titan", 8); err != nil || m.Name != "Titan" {
		t.Errorf("ByName(titan) = %v, %v", m, err)
	}
	if _, err := ByName("jaguar", 8); err == nil {
		t.Error("unknown machine must error")
	}
}

func TestWithNodes(t *testing.T) {
	m := Titan(128)
	m2 := m.WithNodes(16)
	if m2.NumNodes != 16 || m.NumNodes != 128 {
		t.Fatalf("WithNodes must copy: got %d / original %d", m2.NumNodes, m.NumNodes)
	}
}

func TestArchTreeValidate(t *testing.T) {
	for _, m := range []*Machine{Smoky(4), Titan(4)} {
		for _, topo := range []bool{false, true} {
			tr := m.Tree(topo)
			if err := tr.Validate(); err != nil {
				t.Errorf("%s topo=%v: %v", m.Name, topo, err)
			}
		}
	}
	bad := &ArchTree{LevelNames: []string{"m", "c"}, Arity: []int{4}, CrossCost: []float64{1, 2}}
	if bad.Validate() == nil {
		t.Error("mismatched cost count must fail")
	}
	inc := &ArchTree{
		LevelNames: []string{"m", "n", "c"},
		Arity:      []int{2, 2},
		CrossCost:  []float64{1, 5},
	}
	if inc.Validate() == nil {
		t.Error("increasing cost with depth must fail")
	}
}

func TestArchTreeLeaves(t *testing.T) {
	tr := Smoky(3).Tree(true)
	if got := tr.NumLeaves(); got != 48 {
		t.Fatalf("NumLeaves = %d, want 48", got)
	}
	if got := tr.Levels(); got != 3 {
		t.Fatalf("Levels = %d, want 3", got)
	}
}

func TestArchTreeLCA(t *testing.T) {
	// Smoky topo tree: 16 cores/node, 4 per NUMA.
	tr := Smoky(2).Tree(true)
	if got := tr.LCA(0, 0); got != 3 {
		t.Errorf("LCA same core = %d, want 3", got)
	}
	if got := tr.LCA(0, 3); got != 2 {
		t.Errorf("LCA same NUMA = %d, want 2", got)
	}
	if got := tr.LCA(0, 4); got != 1 {
		t.Errorf("LCA same node = %d, want 1", got)
	}
	if got := tr.LCA(0, 16); got != 0 {
		t.Errorf("LCA other node = %d, want 0", got)
	}
}

func TestLeafDistanceOrdering(t *testing.T) {
	tr := Smoky(2).Tree(true)
	same := tr.LeafDistance(0, 0)
	numa := tr.LeafDistance(0, 1)
	node := tr.LeafDistance(0, 5)
	net := tr.LeafDistance(0, 20)
	if !(same == 0 && numa > 0 && node > numa && net > node) {
		t.Fatalf("distance ordering violated: same=%g numa=%g node=%g net=%g", same, numa, node, net)
	}
}

func TestLeafDistanceSymmetryProperty(t *testing.T) {
	tr := Titan(4).Tree(true)
	n := tr.NumLeaves()
	f := func(a, b uint16) bool {
		x, y := int(a)%n, int(b)%n
		return tr.LeafDistance(x, y) == tr.LeafDistance(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTreeMatchesMachineCoreNumbering(t *testing.T) {
	m := Titan(3)
	tr := m.Tree(true)
	n := tr.NumLeaves()
	if n != m.TotalCores() {
		t.Fatalf("tree leaves %d != machine cores %d", n, m.TotalCores())
	}
	for a := 0; a < n; a += 5 {
		for b := 0; b < n; b += 7 {
			lca := tr.LCA(a, b)
			switch {
			case a == b:
				if lca != tr.Levels() {
					t.Fatalf("LCA(%d,%d)=%d for identical cores", a, b, lca)
				}
			case m.SameNUMA(a, b):
				if lca != 2 {
					t.Fatalf("LCA(%d,%d)=%d, want 2 (same NUMA)", a, b, lca)
				}
			case m.SameNode(a, b):
				if lca != 1 {
					t.Fatalf("LCA(%d,%d)=%d, want 1 (same node)", a, b, lca)
				}
			default:
				if lca != 0 {
					t.Fatalf("LCA(%d,%d)=%d, want 0 (cross node)", a, b, lca)
				}
			}
		}
	}
}

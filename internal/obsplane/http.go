package obsplane

import (
	"encoding/json"
	"net"
	"net/http"
	"time"
)

// Fleet HTTP surface — the collector's merged view, mirroring the
// per-daemon monitor.Server endpoints one level up:
//
//	/fleet/metrics   human-readable fleet-merged point table
//	/fleet/spans     JSON: per-daemon health + stitched step table
//	/fleet/critpath  JSON: per-scope stitched critical-path analyses
//	/fleet/slo       JSON: per-tenant SLO statuses
//
// Every handler materializes a complete snapshot under the collector
// lock and encodes from the copy, same contract as monitor.Server: a
// slow reader never stalls sweeps.

// monitorHTTP owns the collector's listener; split out so Close can
// tear it down without touching sweep state.
type monitorHTTP struct {
	srv *http.Server
	ln  net.Listener
}

func (h *monitorHTTP) close() error { return h.srv.Close() }

// Handler returns the /fleet/* mux for embedding or httptest.
func (c *Collector) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/fleet/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		c.Snapshot().Report.WriteTrace(w) //nolint:errcheck // client hang-up mid-write
	})
	mux.HandleFunc("/fleet/spans", func(w http.ResponseWriter, req *http.Request) {
		snap := c.Snapshot()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct { //nolint:errcheck
			Sweeps  int64          `json:"sweeps"`
			Daemons []DaemonStatus `json:"daemons"`
			Steps   []StitchedStep `json:"steps"`
		}{snap.Sweeps, snap.Daemons, snap.Steps})
	})
	mux.HandleFunc("/fleet/critpath", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(c.CritPaths()) //nolint:errcheck
	})
	mux.HandleFunc("/fleet/slo", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(c.SLOStatuses()) //nolint:errcheck
	})
	return mux
}

// Serve starts the fleet HTTP endpoints on addr ("127.0.0.1:0" picks a
// free port) and returns the bound address; Close tears it down.
func (c *Collector) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: c.Handler(), ReadHeaderTimeout: 5 * time.Second}
	c.mu.Lock()
	c.srv = &monitorHTTP{srv: srv, ln: ln}
	c.mu.Unlock()
	go srv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on Close
	return ln.Addr().String(), nil
}

// Package obsplane is FlexIO's fleet observability plane: a collector
// that discovers the live daemons of a deployment through the external
// directory, scrapes each one's monitor endpoints on a jittered
// interval, and merges what it finds into a single fleet view —
// fleet-wide metric histograms, cross-process stitched step traces,
// stitched critical paths that cross the tcp seam between writer and
// reader daemons, and per-tenant SLO burn rates whose breaches can
// steer the resource fabric.
//
// Discovery rides the same lease machinery the data plane uses: each
// flexnode registers its monitor HTTP address under the "obs!"
// namespace with its liveness TTL, so listing that prefix always names
// exactly the live fleet — a crashed daemon's scrape target decays with
// its lease instead of black-holing sweeps forever.
//
// Each daemon is scraped with its own timeout and failure backoff, so
// one dead or wedged node delays only its own slot, never the sweep.
// Span scraping is windowed by the monitor's monotonic SpanCursor
// (Report.SpanCursor): the collector keeps the cursor of its previous
// sweep per daemon and takes exactly the spans recorded since, counting
// ring evictions it never saw as an explicit per-daemon gap instead of
// silently double-counting or missing spans between sweeps.
//
// Cross-process correlation assumes the scraped processes share a
// comparable time base (in-process drills trivially do; a real
// deployment needs synchronized clocks, and skew surfaces as inflated
// wait edges in stitched critical paths).
package obsplane

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"flexio/internal/flight"
	"flexio/internal/monitor"
)

// DefaultPrefix is the directory namespace the collector lists for
// scrape targets. It must match the namespace flexnode daemons lease
// their metrics addresses under (flexnode.ObsNamespace).
const DefaultPrefix = "obs!"

// Discoverer lists live directory bindings under a prefix.
// directory.Mem and directory.Client both satisfy it (the Lister
// extension).
type Discoverer interface {
	List(prefix string) (map[string]string, error)
}

// Options configures a Collector. The zero value selects the defaults
// noted per field.
type Options struct {
	// Prefix is the directory namespace listed for scrape targets
	// (default DefaultPrefix).
	Prefix string
	// Interval is the background sweep period (default 100ms). Each
	// sweep's sleep is jittered by ±Jitter so a fleet of collectors
	// never phase-locks onto the daemons.
	Interval time.Duration
	// Jitter is the sweep-interval jitter fraction in [0, 1)
	// (default 0.2).
	Jitter float64
	// Timeout bounds each daemon's scrape — all three endpoint fetches
	// together (default 2s). A daemon that exceeds it counts as failed
	// for the sweep; the others are unaffected.
	Timeout time.Duration
	// Backoff is how long a failed daemon is skipped before it is
	// scraped again (default 500ms).
	Backoff time.Duration
	// SpanCap bounds the per-daemon accumulated span store (default
	// 1<<16); overflow drops oldest spans and is counted per daemon.
	SpanCap int
	// SLOs are the per-tenant latency objectives evaluated after every
	// sweep.
	SLOs []SLO
	// OnBreach, when set, is called once per breach episode (the latch
	// re-arms when the tenant recovers). Called outside the collector
	// lock.
	OnBreach func(SLOStatus)
	// Client is the HTTP client used for scrapes (default a dedicated
	// client; the per-daemon Timeout is enforced via request contexts
	// either way).
	Client *http.Client
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Prefix == "" {
		out.Prefix = DefaultPrefix
	}
	if out.Interval <= 0 {
		out.Interval = 100 * time.Millisecond
	}
	if out.Jitter <= 0 || out.Jitter >= 1 {
		out.Jitter = 0.2
	}
	if out.Timeout <= 0 {
		out.Timeout = 2 * time.Second
	}
	if out.Backoff <= 0 {
		out.Backoff = 500 * time.Millisecond
	}
	if out.SpanCap <= 0 {
		out.SpanCap = 1 << 16
	}
	if out.Client == nil {
		out.Client = &http.Client{}
	}
	return out
}

// daemonState is the collector's per-daemon bookkeeping.
type daemonState struct {
	key, url     string
	alive        bool
	failures     int    // consecutive scrape failures
	lastErr      string // most recent scrape error ("" after a success)
	backoffUntil time.Time

	lastCursor   int64 // SpanCursor after the previous successful scrape
	gap          int64 // spans evicted by the daemon's ring before we saw them
	localDropped int64 // spans we dropped to our own SpanCap
	spans        []monitor.Span
	report       monitor.Report     // last good report, spans stripped
	dump         flight.JournalDump // last good journal dump
	hasReport    bool
}

// DaemonStatus is the exported per-daemon health row.
type DaemonStatus struct {
	Key      string `json:"key"`
	URL      string `json:"url"`
	Alive    bool   `json:"alive"`
	Failures int    `json:"failures"`
	LastErr  string `json:"last_error,omitempty"`
	// Cursor is the daemon's span cursor at the last successful scrape;
	// Gap counts spans its ring evicted between sweeps (never scraped),
	// Dropped counts spans the collector evicted to its own SpanCap.
	Cursor  int64 `json:"cursor"`
	Gap     int64 `json:"gap"`
	Dropped int64 `json:"dropped,omitempty"`
}

// FleetSnapshot is one consistent view of the merged fleet state.
type FleetSnapshot struct {
	Sweeps  int64          `json:"sweeps"`
	Daemons []DaemonStatus `json:"daemons"`
	// Report is the fleet-merged monitor report (monitor.Merge
	// semantics: histograms merge bucket-wise, counters sum, gauges
	// max). Spans are stripped — the stitched Steps own span-level
	// detail, windowed per daemon so nothing is double-counted.
	Report monitor.Report `json:"report"`
	Steps  []StitchedStep `json:"steps"`
	SLOs   []SLOStatus    `json:"slos,omitempty"`
}

// Collector is the fleet observability collector.
type Collector struct {
	disc Discoverer
	opts Options

	mu      sync.Mutex
	daemons map[string]*daemonState
	slos    []*sloState
	sweeps  int64
	rng     *rand.Rand

	srv     *monitorHTTP
	stop    chan struct{}
	stopped sync.WaitGroup
	once    sync.Once
}

// New creates a collector over a discoverer (a directory.Client against
// the deployment's dirserver, or a directory.Mem in-process).
func New(disc Discoverer, opts Options) *Collector {
	c := &Collector{
		disc:    disc,
		opts:    opts.withDefaults(),
		daemons: make(map[string]*daemonState),
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())), //nolint:gosec // jitter, not crypto
		stop:    make(chan struct{}),
	}
	for _, s := range c.opts.SLOs {
		cfg := s.withDefaults()
		// Seed the status so /fleet/slo identifies every objective
		// before the first sweep evaluates it.
		c.slos = append(c.slos, &sloState{cfg: cfg, last: SLOStatus{
			Tenant: cfg.Tenant, TargetSeconds: cfg.Target.Seconds(),
		}})
	}
	return c
}

// Start launches the background sweep loop (jittered Interval).
func (c *Collector) Start() {
	c.stopped.Add(1)
	go func() {
		defer c.stopped.Done()
		for {
			iv := c.opts.Interval
			c.mu.Lock()
			j := 1 + c.opts.Jitter*(2*c.rng.Float64()-1)
			c.mu.Unlock()
			t := time.NewTimer(time.Duration(float64(iv) * j))
			select {
			case <-c.stop:
				t.Stop()
				return
			case <-t.C:
				c.Sweep() //nolint:errcheck // a failed listing retries next tick
			}
		}
	}()
}

// Close stops the sweep loop and the HTTP server (if serving).
func (c *Collector) Close() error {
	c.once.Do(func() { close(c.stop) })
	c.stopped.Wait()
	c.mu.Lock()
	srv := c.srv
	c.srv = nil
	c.mu.Unlock()
	if srv != nil {
		return srv.close()
	}
	return nil
}

// Sweep performs one synchronous collection pass: list the live fleet,
// scrape every daemon not in backoff concurrently (each under its own
// timeout), fold the results in, and re-evaluate SLOs. Drills call it
// directly for deterministic assertions; the Start loop calls it on the
// jittered interval.
func (c *Collector) Sweep() error {
	targets, err := c.disc.List(c.opts.Prefix)
	if err != nil {
		return fmt.Errorf("obsplane: discovery: %w", err)
	}
	now := time.Now()
	type job struct{ key, url string }
	var jobs []job
	c.mu.Lock()
	for key, url := range targets {
		st := c.daemons[key]
		if st == nil {
			st = &daemonState{key: key}
			c.daemons[key] = st
		}
		st.url = url
		if now.Before(st.backoffUntil) {
			continue
		}
		jobs = append(jobs, job{key, url})
	}
	// A daemon whose lease expired keeps its accumulated history (its
	// spans already in flight remain stitched) but is marked gone.
	for key, st := range c.daemons {
		if _, ok := targets[key]; !ok {
			st.alive = false
		}
	}
	c.mu.Unlock()

	var wg sync.WaitGroup
	for _, jb := range jobs {
		wg.Add(1)
		go func(jb job) {
			defer wg.Done()
			c.scrape(jb.key, jb.url)
		}(jb)
	}
	wg.Wait()

	c.mu.Lock()
	c.sweeps++
	steps := c.stitchLocked()
	fired := c.evalSLOsLocked(steps)
	cb := c.opts.OnBreach
	c.mu.Unlock()
	if cb != nil {
		for _, s := range fired {
			cb(s)
		}
	}
	return nil
}

// scrape fetches one daemon's /spans, /report and /journal under the
// per-daemon timeout and folds the results into its state. A missing
// /journal (404: no flight recorder attached) is tolerated; transport
// errors on any endpoint fail the scrape and arm the backoff.
func (c *Collector) scrape(key, url string) {
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.Timeout)
	defer cancel()

	var spansRep, fullRep monitor.Report
	var dump flight.JournalDump
	err := c.getJSON(ctx, url+"/spans", &spansRep)
	if err == nil {
		err = c.getJSON(ctx, url+"/report", &fullRep)
	}
	haveDump := false
	if err == nil {
		switch jerr := c.getJSON(ctx, url+"/journal", &dump); {
		case jerr == nil:
			haveDump = true
		case isHTTPStatus(jerr, http.StatusNotFound):
			// No flight recorder on this daemon; metrics-only is fine.
		default:
			err = jerr
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.daemons[key]
	if st == nil { // raced with a reset; re-create
		st = &daemonState{key: key, url: url}
		c.daemons[key] = st
	}
	if err != nil {
		st.alive = false
		st.failures++
		st.lastErr = err.Error()
		st.backoffUntil = time.Now().Add(c.opts.Backoff)
		return
	}
	st.alive = true
	st.failures = 0
	st.lastErr = ""
	st.ingestSpansLocked(spansRep, c.opts.SpanCap)
	fullRep.Spans = nil // the windowed store owns span-level detail
	fullRep.SpansDropped = 0
	st.report = fullRep
	st.hasReport = true
	if haveDump {
		st.dump = dump
	}
}

// ingestSpansLocked windows a /spans response against the cursor of the
// previous sweep: Spans covers monitor positions
// [SpanCursor-len(Spans), SpanCursor), so the spans recorded since last
// sweep are exactly those past the previous cursor — and positions
// between the previous cursor and the window start were evicted by the
// daemon's ring before this sweep saw them (a gap, counted, never
// silently absorbed). A cursor that moved backwards means the monitor
// was reset; windowing restarts from zero.
func (st *daemonState) ingestSpansLocked(rep monitor.Report, spanCap int) {
	if rep.SpanCursor < st.lastCursor {
		st.lastCursor = 0
	}
	windowStart := rep.SpanCursor - int64(len(rep.Spans))
	newFrom := st.lastCursor - windowStart
	if newFrom < 0 {
		st.gap += -newFrom
		newFrom = 0
	}
	if newFrom > int64(len(rep.Spans)) {
		newFrom = int64(len(rep.Spans))
	}
	st.spans = append(st.spans, rep.Spans[newFrom:]...)
	st.lastCursor = rep.SpanCursor
	if over := len(st.spans) - spanCap; over > 0 {
		st.localDropped += int64(over)
		st.spans = append(st.spans[:0:0], st.spans[over:]...)
	}
}

// getJSON fetches url and decodes its JSON body into out.
func (c *Collector) getJSON(ctx context.Context, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := c.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		return &httpStatusError{url: url, code: resp.StatusCode}
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

type httpStatusError struct {
	url  string
	code int
}

func (e *httpStatusError) Error() string {
	return fmt.Sprintf("obsplane: GET %s: status %d", e.url, e.code)
}

func isHTTPStatus(err error, code int) bool {
	se, ok := err.(*httpStatusError)
	return ok && se.code == code
}

// Snapshot assembles one consistent fleet view from the collector's
// current state: per-daemon health, the fleet-merged report, the
// stitched step table and the SLO statuses.
func (c *Collector) Snapshot() FleetSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.snapshotLocked()
}

func (c *Collector) snapshotLocked() FleetSnapshot {
	out := FleetSnapshot{Sweeps: c.sweeps}
	reports := make([]monitor.Report, 0, len(c.daemons))
	for _, key := range c.sortedKeysLocked() {
		st := c.daemons[key]
		out.Daemons = append(out.Daemons, DaemonStatus{
			Key: st.key, URL: st.url, Alive: st.alive,
			Failures: st.failures, LastErr: st.lastErr,
			Cursor: st.lastCursor, Gap: st.gap, Dropped: st.localDropped,
		})
		if st.hasReport {
			reports = append(reports, st.report)
		}
	}
	out.Report = monitor.Merge("fleet", reports...)
	out.Steps = c.stitchLocked()
	for _, s := range c.slos {
		out.SLOs = append(out.SLOs, s.last)
	}
	return out
}

// sortedKeysLocked returns the daemon keys in stable order, so merged
// artifacts (and the MergeDumps lane numbering) are deterministic
// across calls.
func (c *Collector) sortedKeysLocked() []string {
	keys := make([]string, 0, len(c.daemons))
	for k := range c.daemons {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CritPaths merges the fleet's journal dumps (stable daemon order →
// stable rank lanes) and runs the critical-path analysis per scope.
// Step paths whose edges span more than one lane cross a process
// boundary (flight.CrossesProcess).
func (c *Collector) CritPaths() map[string]flight.Analysis {
	c.mu.Lock()
	dumps := make([]flight.JournalDump, 0, len(c.daemons))
	for _, key := range c.sortedKeysLocked() {
		if st := c.daemons[key]; len(st.dump.Events) > 0 {
			dumps = append(dumps, st.dump)
		}
	}
	c.mu.Unlock()
	merged := flight.MergeDumps(dumps...)
	out := make(map[string]flight.Analysis)
	for scope, evs := range flight.SplitScopes(merged) {
		out[scope] = flight.Analyze(evs)
	}
	return out
}

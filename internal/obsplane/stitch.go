package obsplane

import (
	"sort"

	"flexio/internal/directory"
)

// StitchedStep is one timestep of one tenant-qualified stream,
// reassembled from spans scraped across the fleet: the writer daemon's
// flush/pack/send spans and the reader daemon's accept/assemble spans
// of the same {scope, step} join into a single end-to-end latency
// envelope, with the contributing daemons attributed by span origin.
type StitchedStep struct {
	// Scope is the tenant-qualified stream key (directory.Qualify
	// grammar); Tenant and Stream are its split halves for rollups.
	Scope  string `json:"scope"`
	Tenant string `json:"tenant,omitempty"`
	Stream string `json:"stream"`
	Step   int64  `json:"step"`
	// Epoch is the highest session epoch seen among the step's spans
	// (a step spanning a reconfiguration reports the post-switch epoch).
	Epoch uint64 `json:"epoch,omitempty"`
	// Start is the earliest span start, Finish the latest span end, and
	// Latency their difference — the cross-process step envelope.
	Start   float64 `json:"start"`
	Finish  float64 `json:"finish"`
	Latency float64 `json:"latency"`
	Spans   int     `json:"spans"`
	// Daemons lists the distinct span origins that contributed, sorted;
	// CrossProcess is len(Daemons) > 1.
	Daemons      []string `json:"daemons"`
	CrossProcess bool     `json:"cross_process"`
}

// stitchLocked joins the per-daemon windowed span stores into the
// stitched step table, grouped by {Scope, Step} and sorted by scope
// then step. Un-scoped spans (node housekeeping, transport internals)
// belong to no stream and are left out. Caller holds c.mu.
func (c *Collector) stitchLocked() []StitchedStep {
	type key struct {
		scope string
		step  int64
	}
	acc := make(map[key]*StitchedStep)
	daemons := make(map[key]map[string]bool)
	for _, st := range c.daemons {
		for i := range st.spans {
			sp := &st.spans[i]
			if sp.Scope == "" {
				continue
			}
			k := key{sp.Scope, sp.Step}
			s := acc[k]
			if s == nil {
				tenant, stream := directory.SplitTenant(sp.Scope)
				s = &StitchedStep{
					Scope: sp.Scope, Tenant: tenant, Stream: stream,
					Step: sp.Step, Start: sp.Start, Finish: sp.Start + sp.Dur,
				}
				acc[k] = s
				daemons[k] = make(map[string]bool)
			}
			if sp.Start < s.Start {
				s.Start = sp.Start
			}
			if end := sp.Start + sp.Dur; end > s.Finish {
				s.Finish = end
			}
			if sp.Epoch > s.Epoch {
				s.Epoch = sp.Epoch
			}
			s.Spans++
			if sp.Origin != "" {
				daemons[k][sp.Origin] = true
			}
		}
	}
	out := make([]StitchedStep, 0, len(acc))
	for k, s := range acc {
		for d := range daemons[k] {
			s.Daemons = append(s.Daemons, d)
		}
		sort.Strings(s.Daemons)
		s.CrossProcess = len(s.Daemons) > 1
		s.Latency = s.Finish - s.Start
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Scope != out[j].Scope {
			return out[i].Scope < out[j].Scope
		}
		return out[i].Step < out[j].Step
	})
	return out
}

package obsplane

import (
	"sort"
	"time"
)

// SLO is a per-tenant step-latency objective evaluated against the
// stitched step table: over the most recent Window steps of the
// tenant's streams, the fraction whose end-to-end latency exceeds
// Target may spend at most Budget; the burn rate is that fraction
// divided by the budget, so burn >= MaxBurn means the tenant is eating
// error budget faster than allowed and the breach latch fires.
type SLO struct {
	Tenant string `json:"tenant"`
	// Target is the per-step end-to-end latency objective (the stitched
	// Start→Finish envelope across processes).
	Target time.Duration `json:"target"`
	// Budget is the tolerated violation fraction in (0, 1]
	// (default 0.1: one step in ten may miss the target).
	Budget float64 `json:"budget"`
	// Window is how many recent steps per tenant are evaluated
	// (default 32).
	Window int `json:"window"`
	// MaxBurn is the burn-rate breach threshold (default 1.0: breach
	// exactly when the violation fraction exceeds the budget).
	MaxBurn float64 `json:"max_burn"`
}

func (s SLO) withDefaults() SLO {
	if s.Budget <= 0 || s.Budget > 1 {
		s.Budget = 0.1
	}
	if s.Window <= 0 {
		s.Window = 32
	}
	if s.MaxBurn <= 0 {
		s.MaxBurn = 1.0
	}
	return s
}

// SLOStatus is one objective's evaluated state after a sweep.
type SLOStatus struct {
	Tenant        string  `json:"tenant"`
	TargetSeconds float64 `json:"target_seconds"`
	// Steps and Violations cover the evaluated window; BurnRate is
	// (Violations/Steps)/Budget, 0 while no steps have been stitched.
	Steps      int     `json:"steps"`
	Violations int     `json:"violations"`
	BurnRate   float64 `json:"burn_rate"`
	// WorstLatency is the slowest step in the window, in seconds.
	WorstLatency float64 `json:"worst_latency,omitempty"`
	// Breached is the current latch state; Episodes counts how many
	// times the latch has fired (false→true transitions), so a steering
	// loop reacts once per breach instead of once per sweep.
	Breached bool `json:"breached"`
	Episodes int  `json:"episodes"`
}

// sloState carries one objective's latch across sweeps.
type sloState struct {
	cfg      SLO
	breached bool
	episodes int
	last     SLOStatus
}

// evalSLOsLocked re-evaluates every objective against the stitched step
// table and returns the statuses whose latch fired this sweep (for
// OnBreach, called by the sweep outside the lock). Caller holds c.mu.
func (c *Collector) evalSLOsLocked(steps []StitchedStep) []SLOStatus {
	var fired []SLOStatus
	for _, s := range c.slos {
		status := evalSLO(s.cfg, steps)
		newlyBreached := status.Breached && !s.breached
		s.breached = status.Breached
		if newlyBreached {
			s.episodes++
		}
		status.Episodes = s.episodes
		s.last = status
		if newlyBreached {
			fired = append(fired, status)
		}
	}
	return fired
}

// evalSLO scores one objective: the tenant's stitched steps, newest
// Window of them by step number, against the latency target.
func evalSLO(cfg SLO, steps []StitchedStep) SLOStatus {
	status := SLOStatus{Tenant: cfg.Tenant, TargetSeconds: cfg.Target.Seconds()}
	var mine []StitchedStep
	for _, st := range steps {
		if st.Tenant == cfg.Tenant {
			mine = append(mine, st)
		}
	}
	// The stitched table is scope-then-step sorted; re-sort by step so a
	// tenant with several streams still windows by recency.
	sort.Slice(mine, func(i, j int) bool { return mine[i].Step < mine[j].Step })
	if len(mine) > cfg.Window {
		mine = mine[len(mine)-cfg.Window:]
	}
	target := cfg.Target.Seconds()
	for _, st := range mine {
		status.Steps++
		if st.Latency > target {
			status.Violations++
		}
		if st.Latency > status.WorstLatency {
			status.WorstLatency = st.Latency
		}
	}
	if status.Steps > 0 {
		status.BurnRate = (float64(status.Violations) / float64(status.Steps)) / cfg.Budget
	}
	status.Breached = status.Steps > 0 && status.BurnRate >= cfg.MaxBurn
	return status
}

// SLOStatuses reports the most recent evaluation of every objective.
func (c *Collector) SLOStatuses() []SLOStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]SLOStatus, 0, len(c.slos))
	for _, s := range c.slos {
		out = append(out, s.last)
	}
	return out
}

package obsplane

import (
	"fmt"
	"testing"

	"flexio/internal/monitor"
)

// nopDisc is a discoverer for benchmarks that exercise merge cost only
// (the fleet state is pre-built, no scraping).
type nopDisc struct{}

func (nopDisc) List(string) (map[string]string, error) { return nil, nil }

// benchCollector pre-builds a collector holding nDaemons scraped
// states of spansEach spans (8 tenants round-robin) plus a populated
// report each — the shape one Snapshot must merge and stitch.
func benchCollector(nDaemons, spansEach int) *Collector {
	c := New(nopDisc{}, Options{})
	for d := 0; d < nDaemons; d++ {
		name := fmt.Sprintf("d%02d", d)
		m := monitor.New(name)
		m.SetSpanCapacity(spansEach)
		for i := 0; i < spansEach; i++ {
			m.RecordSpan(monitor.Span{
				Point: "writer.flush",
				Scope: fmt.Sprintf("t%d/gts", i%8),
				Step:  int64(i / 8),
				Start: float64(i) * 1e-4,
				Dur:   1e-4,
			})
		}
		rep := m.Snapshot()
		st := &daemonState{key: DefaultPrefix + name, alive: true, hasReport: true}
		st.spans = rep.Spans
		rep.Spans = nil
		st.report = rep
		st.lastCursor = rep.SpanCursor
		c.daemons[st.key] = st
	}
	return c
}

// BenchmarkCollectorMerge measures one fleet snapshot — merging every
// daemon's report and stitching the accumulated spans into the step
// table — over an 8-daemon, 16k-span fleet. This is the per-sweep
// steady-state cost of the collector, gated in CI by
// TestObsplaneMergeBudget against BENCH_obsplane.json.
func BenchmarkCollectorMerge(b *testing.B) {
	c := benchCollector(8, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := c.Snapshot()
		if len(snap.Steps) == 0 || len(snap.Report.Timings) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

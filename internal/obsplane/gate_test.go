//go:build !race

package obsplane

import (
	"encoding/json"
	"os"
	"testing"
)

// TestObsplaneMergeBudget is the CI regression gate for the fleet
// collector's per-sweep merge cost: one Snapshot over an 8-daemon,
// 16k-span fleet (report merge + step stitching) must stay under the
// ns/op budget recorded in BENCH_obsplane.json. The budget is generous
// (~4x measured) so it catches an accidental quadratic stitch or
// per-span re-scan across sweeps, not scheduler jitter. Excluded under
// -race (instrumented builds time nothing meaningful).
func TestObsplaneMergeBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark gate skipped in -short")
	}
	blob, err := os.ReadFile("../../BENCH_obsplane.json")
	if err != nil {
		t.Fatalf("BENCH_obsplane.json missing: %v", err)
	}
	var budget struct {
		MergeBudgetNs float64 `json:"merge_budget_ns"`
	}
	if err := json.Unmarshal(blob, &budget); err != nil {
		t.Fatalf("BENCH_obsplane.json: %v", err)
	}
	if budget.MergeBudgetNs <= 0 {
		t.Fatal("BENCH_obsplane.json has no merge_budget_ns")
	}

	res := testing.Benchmark(BenchmarkCollectorMerge)
	t.Logf("fleet snapshot %dns/op, %d allocs/op (budget %.0fns)",
		res.NsPerOp(), res.AllocsPerOp(), budget.MergeBudgetNs)
	if float64(res.NsPerOp()) > budget.MergeBudgetNs {
		t.Fatalf("collector merge %dns/op exceeds budget %.0fns/op (BENCH_obsplane.json)",
			res.NsPerOp(), budget.MergeBudgetNs)
	}
}

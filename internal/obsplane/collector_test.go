package obsplane

import (
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"flexio/internal/directory"
	"flexio/internal/flight"
	"flexio/internal/monitor"
)

// scrapeTarget wires a live monitor (and optionally a journal) behind a
// real monitor.Server handler in httptest, registered in a Mem
// directory under the obs! namespace — the exact shape a flexnode
// exposes to the collector.
type scrapeTarget struct {
	mon *monitor.Monitor
	jrn *flight.Journal
	srv *httptest.Server
}

func newScrapeTarget(t *testing.T, dir *directory.Mem, name string) *scrapeTarget {
	t.Helper()
	st := &scrapeTarget{mon: monitor.New(name), jrn: flight.NewJournal(0)}
	st.mon.SetIdentity(name, "")
	st.jrn.SetIdentity(name, "")
	msrv := monitor.NewServer(func() monitor.Report { return st.mon.Snapshot() })
	msrv.SetFlightSource(func() *flight.Journal { return st.jrn })
	st.srv = httptest.NewServer(msrv.Handler())
	t.Cleanup(st.srv.Close)
	if err := dir.Register(DefaultPrefix+name, st.srv.URL); err != nil {
		t.Fatalf("register %s: %v", name, err)
	}
	return st
}

func span(scope string, step int64, point string, start, dur float64) monitor.Span {
	return monitor.Span{Point: point, Scope: scope, Step: step, Start: start, Dur: dur}
}

// TestCollectorWindowingNoDoubleCount: three sweeps over a monitor that
// records spans between them must accumulate every span exactly once —
// the cursor window, not re-reading the whole ring, decides what is new.
func TestCollectorWindowingNoDoubleCount(t *testing.T) {
	dir := directory.NewMem()
	defer dir.Close()
	tgt := newScrapeTarget(t, dir, "wd0")
	c := New(dir, Options{})
	defer c.Close() //nolint:errcheck

	total := 0
	for sweep := 0; sweep < 3; sweep++ {
		for i := 0; i < 5; i++ {
			tgt.mon.RecordSpan(span("acme/gts", int64(total), "writer.flush", float64(total), 0.001))
			total++
		}
		if err := c.Sweep(); err != nil {
			t.Fatalf("sweep %d: %v", sweep, err)
		}
		// Sweep the same state again: the cursor did not move, so nothing
		// new may be ingested.
		if err := c.Sweep(); err != nil {
			t.Fatalf("re-sweep %d: %v", sweep, err)
		}
	}
	snap := c.Snapshot()
	if len(snap.Daemons) != 1 {
		t.Fatalf("daemons = %d, want 1", len(snap.Daemons))
	}
	d := snap.Daemons[0]
	if d.Gap != 0 || d.Cursor != int64(total) {
		t.Fatalf("gap=%d cursor=%d, want 0 and %d", d.Gap, d.Cursor, total)
	}
	stitched := 0
	for _, st := range snap.Steps {
		stitched += st.Spans
	}
	if stitched != total {
		t.Fatalf("stitched %d spans, want %d (double-counted or lost)", stitched, total)
	}
}

// TestCollectorGapDetection: a span ring smaller than the inter-sweep
// recording burst must surface the evicted spans as an explicit
// per-daemon gap with exact cursor math, not silently absorb them.
func TestCollectorGapDetection(t *testing.T) {
	dir := directory.NewMem()
	defer dir.Close()
	tgt := newScrapeTarget(t, dir, "wd0")
	tgt.mon.SetSpanCapacity(4)
	c := New(dir, Options{})
	defer c.Close() //nolint:errcheck

	for i := 0; i < 10; i++ {
		tgt.mon.RecordSpan(span("acme/gts", int64(i), "writer.flush", float64(i), 0.001))
	}
	if err := c.Sweep(); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 20; i++ {
		tgt.mon.RecordSpan(span("acme/gts", int64(i), "writer.flush", float64(i), 0.001))
	}
	if err := c.Sweep(); err != nil {
		t.Fatal(err)
	}
	d := c.Snapshot().Daemons[0]
	// Each burst of 10 leaves a 4-deep ring: 6 evicted before the sweep.
	if d.Gap != 12 {
		t.Fatalf("gap = %d, want 12 (6 evicted per burst)", d.Gap)
	}
	if d.Cursor != 20 {
		t.Fatalf("cursor = %d, want 20", d.Cursor)
	}
}

// TestCollectorStitchAcrossDaemons: a writer daemon's send span and a
// reader daemon's assemble span of the same {scope, step} must join
// into one cross-process step whose envelope spans both.
func TestCollectorStitchAcrossDaemons(t *testing.T) {
	dir := directory.NewMem()
	defer dir.Close()
	wd := newScrapeTarget(t, dir, "wd0")
	rd := newScrapeTarget(t, dir, "rd0")
	c := New(dir, Options{})
	defer c.Close() //nolint:errcheck

	const scope = "acme/gts"
	for s := int64(0); s < 3; s++ {
		base := float64(s)
		wd.mon.RecordSpan(span(scope, s, "writer.flush", base, 0.010))
		wd.mon.RecordSpan(span(scope, s, "send.tcp", base+0.002, 0.003))
		rd.mon.RecordSpan(span(scope, s, "reader.assemble", base+0.006, 0.008))
	}
	// Housekeeping spans outside any stream must not leak into steps.
	wd.mon.RecordSpan(monitor.Span{Point: "node.heartbeat", Start: 0, Dur: 0.001})
	if err := c.Sweep(); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	if len(snap.Steps) != 3 {
		t.Fatalf("stitched %d steps, want 3: %+v", len(snap.Steps), snap.Steps)
	}
	for i, st := range snap.Steps {
		if st.Scope != scope || st.Tenant != "acme" || st.Stream != "gts" {
			t.Fatalf("step %d scope split = %q/%q (%q)", i, st.Tenant, st.Stream, st.Scope)
		}
		if !st.CrossProcess || len(st.Daemons) != 2 {
			t.Fatalf("step %d not cross-process: daemons=%v", i, st.Daemons)
		}
		base := float64(st.Step)
		if st.Start != base || st.Finish != base+0.014 {
			t.Fatalf("step %d envelope [%v, %v], want [%v, %v]",
				i, st.Start, st.Finish, base, base+0.014)
		}
	}
	// The merged fleet report must carry both processes' histograms.
	if snap.Report.Timings["send.tcp"].Count != 3 || snap.Report.Timings["reader.assemble"].Count != 3 {
		t.Fatalf("fleet merge lost timings: %v", snap.Report.Timings)
	}
	if len(snap.Report.Origins) != 2 {
		t.Fatalf("fleet origins = %v, want both daemons", snap.Report.Origins)
	}
}

// TestCollectorDeadDaemonBackoff: a dead scrape target fails its own
// slot and is skipped until its backoff elapses; the live daemon's
// scrape must be unaffected in the same sweep.
func TestCollectorDeadDaemonBackoff(t *testing.T) {
	dir := directory.NewMem()
	defer dir.Close()
	live := newScrapeTarget(t, dir, "wd0")
	dead := httptest.NewServer(nil)
	deadURL := dead.URL
	dead.Close()
	if err := dir.Register(DefaultPrefix+"wd1", deadURL); err != nil {
		t.Fatal(err)
	}
	c := New(dir, Options{Timeout: 250 * time.Millisecond, Backoff: 100 * time.Millisecond})
	defer c.Close() //nolint:errcheck

	live.mon.RecordSpan(span("acme/gts", 0, "writer.flush", 0, 0.001))
	if err := c.Sweep(); err != nil {
		t.Fatal(err)
	}
	var liveSt, deadSt DaemonStatus
	for _, d := range c.Snapshot().Daemons {
		switch d.Key {
		case DefaultPrefix + "wd0":
			liveSt = d
		case DefaultPrefix + "wd1":
			deadSt = d
		}
	}
	if !liveSt.Alive || liveSt.Cursor != 1 {
		t.Fatalf("live daemon not scraped alongside the dead one: %+v", liveSt)
	}
	if deadSt.Alive || deadSt.Failures != 1 || deadSt.LastErr == "" {
		t.Fatalf("dead daemon state = %+v, want failed once", deadSt)
	}
	// Within the backoff window the dead daemon is not re-dialed.
	if err := c.Sweep(); err != nil {
		t.Fatal(err)
	}
	for _, d := range c.Snapshot().Daemons {
		if d.Key == DefaultPrefix+"wd1" && d.Failures != 1 {
			t.Fatalf("dead daemon re-scraped inside backoff: %+v", d)
		}
	}
	time.Sleep(120 * time.Millisecond)
	if err := c.Sweep(); err != nil {
		t.Fatal(err)
	}
	for _, d := range c.Snapshot().Daemons {
		if d.Key == DefaultPrefix+"wd1" && d.Failures != 2 {
			t.Fatalf("dead daemon not retried after backoff: %+v", d)
		}
	}
}

// TestCollectorSLOBreachLatch: a tenant persistently over its latency
// target trips the breach exactly once (the latch), re-arms on
// recovery, and a healthy tenant never fires.
func TestCollectorSLOBreachLatch(t *testing.T) {
	dir := directory.NewMem()
	defer dir.Close()
	tgt := newScrapeTarget(t, dir, "rd0")
	var fires atomic.Int64
	c := New(dir, Options{
		SLOs: []SLO{
			{Tenant: "lag", Target: 5 * time.Millisecond, Budget: 0.2, Window: 8},
			{Tenant: "acme", Target: time.Second},
		},
		OnBreach: func(s SLOStatus) {
			if s.Tenant != "lag" {
				t.Errorf("breach fired for %q", s.Tenant)
			}
			fires.Add(1)
		},
	})
	defer c.Close() //nolint:errcheck

	step := int64(0)
	slowSteps := func(n int) {
		for i := 0; i < n; i++ {
			tgt.mon.RecordSpan(span("lag/gts", step, "reader.assemble", float64(step), 0.025))
			tgt.mon.RecordSpan(span("acme/gts", step, "reader.assemble", float64(step), 0.001))
			step++
		}
	}
	slowSteps(4)
	if err := c.Sweep(); err != nil {
		t.Fatal(err)
	}
	slowSteps(4)
	if err := c.Sweep(); err != nil {
		t.Fatal(err)
	}
	if got := fires.Load(); got != 1 {
		t.Fatalf("breach fired %d times across persistent violation, want latched 1", got)
	}
	var lag SLOStatus
	for _, s := range c.SLOStatuses() {
		if s.Tenant == "lag" {
			lag = s
		}
	}
	if !lag.Breached || lag.Episodes != 1 || lag.Violations != lag.Steps {
		t.Fatalf("lag status = %+v", lag)
	}
	if lag.BurnRate < 1.0/0.2-0.01 {
		t.Fatalf("burn rate = %v, want ~%v (all steps violating / 0.2 budget)", lag.BurnRate, 1.0/0.2)
	}

	// Recovery: eight fast steps fill the window, the latch re-arms, and
	// a later relapse fires a second episode.
	for i := 0; i < 8; i++ {
		tgt.mon.RecordSpan(span("lag/gts", step, "reader.assemble", float64(step), 0.001))
		step++
	}
	if err := c.Sweep(); err != nil {
		t.Fatal(err)
	}
	for _, s := range c.SLOStatuses() {
		if s.Tenant == "lag" && s.Breached {
			t.Fatalf("lag still breached after recovery: %+v", s)
		}
	}
	for i := 0; i < 8; i++ {
		tgt.mon.RecordSpan(span("lag/gts", step, "reader.assemble", float64(step), 0.025))
		step++
	}
	if err := c.Sweep(); err != nil {
		t.Fatal(err)
	}
	if got := fires.Load(); got != 2 {
		t.Fatalf("relapse fired %d total episodes, want 2", got)
	}
}

// TestCollectorCritPathCrossesProcess: journals scraped from a writer
// and a reader daemon, joined only by the "w0>r0" channel string, must
// yield a stitched critical path whose edges live in two rank lanes.
func TestCollectorCritPathCrossesProcess(t *testing.T) {
	dir := directory.NewMem()
	defer dir.Close()
	wd := newScrapeTarget(t, dir, "wd0")
	rd := newScrapeTarget(t, dir, "rd0")
	c := New(dir, Options{})
	defer c.Close() //nolint:errcheck

	const scope = "acme/gts"
	p := wd.jrn.Record(flight.Event{Kind: flight.KindCompute, Point: "writer.flush", Scope: scope, T: 1.0, Dur: 0.010, Step: 0})
	wd.jrn.Record(flight.Event{Kind: flight.KindSend, Point: "send.tcp", Channel: "w0>r0", Scope: scope, Parent: p, T: 1.010, Dur: 0.005, Step: 0, Bytes: 4096})
	q := rd.jrn.Record(flight.Event{Kind: flight.KindRecv, Point: "reader.accept", Channel: "w0>r0", Scope: scope, T: 1.016, Step: 0, Bytes: 4096})
	rd.jrn.Record(flight.Event{Kind: flight.KindCompute, Point: "reader.assemble", Scope: scope, Parent: q, T: 1.016, Dur: 0.008, Step: 0})
	if err := c.Sweep(); err != nil {
		t.Fatal(err)
	}
	paths := c.CritPaths()
	an, ok := paths[scope]
	if !ok || len(an.Steps) != 1 {
		t.Fatalf("critpath analyses = %+v, want one step for %q", paths, scope)
	}
	sp := &an.Steps[0]
	if !flight.CrossesProcess(sp) {
		t.Fatalf("critical path does not cross a process boundary: %v", sp)
	}
	var sawTCP bool
	for _, e := range sp.Edges {
		if e.Point == "send.tcp" {
			sawTCP = true
		}
	}
	if !sawTCP {
		t.Fatalf("no tcp edge on the stitched path: %v", sp.Edges)
	}
}

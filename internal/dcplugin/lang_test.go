package dcplugin

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// evalExpr runs `result = <expr>;` and returns the value of result via
// out-meta.
func evalExpr(t *testing.T, exprSrc string, env *Env) float64 {
	t.Helper()
	prog, err := Compile("set(\"result\", " + exprSrc + ");")
	if err != nil {
		t.Fatalf("compile %q: %v", exprSrc, err)
	}
	if env == nil {
		env = NewEnv(nil, nil)
	}
	if err := prog.Run(env, 0); err != nil {
		t.Fatalf("run %q: %v", exprSrc, err)
	}
	v, ok := env.OutMeta["result"].(float64)
	if !ok {
		t.Fatalf("no numeric result for %q", exprSrc)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	cases := map[string]float64{
		"1 + 2 * 3":         7,
		"(1 + 2) * 3":       9,
		"10 / 4":            2.5,
		"7 % 3":             1,
		"-5 + 2":            -3,
		"2 * -3":            -6,
		"1.5e2 + 0.5":       150.5,
		"min(3, 2) + 1":     3,
		"max(3, 2)":         3,
		"abs(-4)":           4,
		"sqrt(16)":          4,
		"floor(2.9)":        2,
		"ceil(2.1)":         3,
		"pow(2, 10)":        1024,
		"exp(0)":            1,
		"log(1)":            0,
		"1 < 2":             1,
		"2 <= 1":            0,
		"3 > 2":             1,
		"3 >= 4":            0,
		"1 == 1":            1,
		"1 != 1":            0,
		"1 && 0":            0,
		"1 && 2":            1,
		"0 || 3":            1,
		"0 || 0":            0,
		"!0":                1,
		"!5":                0,
		"1 < 2 && 3 < 4":    1,
		"1 + 1 == 2 || 0/0": 1, // short-circuit: 0/0 never evaluated
	}
	for src, want := range cases {
		if got := evalExpr(t, src, nil); got != want {
			t.Errorf("%q = %g, want %g", src, got, want)
		}
	}
}

func TestShortCircuitAnd(t *testing.T) {
	// 0 && (1/0) must not divide by zero.
	if got := evalExpr(t, "0 && 1/0", nil); got != 0 {
		t.Fatalf("short-circuit and = %g", got)
	}
}

func TestVariablesAndLoops(t *testing.T) {
	prog := MustCompile(`
		sum = 0;
		i = 1;
		for (; i <= 100; i = i + 1) {
			sum = sum + i;
		}
		set("sum", sum);
	`)
	env := NewEnv(nil, nil)
	if err := prog.Run(env, 0); err != nil {
		t.Fatal(err)
	}
	if env.OutMeta["sum"] != float64(5050) {
		t.Fatalf("sum = %v", env.OutMeta["sum"])
	}
}

func TestForWithInitAndPost(t *testing.T) {
	prog := MustCompile(`
		n = 0;
		for (i = 0; i < 10; i = i + 2) { n = n + 1; }
		set("n", n);
	`)
	env := NewEnv(nil, nil)
	if err := prog.Run(env, 0); err != nil {
		t.Fatal(err)
	}
	if env.OutMeta["n"] != float64(5) {
		t.Fatalf("n = %v", env.OutMeta["n"])
	}
}

func TestIfElseChain(t *testing.T) {
	prog := MustCompile(`
		x = get("x");
		if (x < 0) { setstr("sign", "neg"); }
		else if (x == 0) { setstr("sign", "zero"); }
		else { setstr("sign", "pos"); }
	`)
	for x, want := range map[float64]string{-3: "neg", 0: "zero", 9: "pos"} {
		env := NewEnv(nil, map[string]any{"x": x})
		if err := prog.Run(env, 0); err != nil {
			t.Fatal(err)
		}
		if env.OutMeta["sign"] != want {
			t.Errorf("x=%g: sign = %v, want %s", x, env.OutMeta["sign"], want)
		}
	}
}

func TestVarKeyword(t *testing.T) {
	prog := MustCompile(`
		var x = 5;
		var y;
		set("x", x);
		set("y", y);
	`)
	env := NewEnv(nil, nil)
	if err := prog.Run(env, 0); err != nil {
		t.Fatal(err)
	}
	if env.OutMeta["x"] != float64(5) || env.OutMeta["y"] != float64(0) {
		t.Fatalf("x=%v y=%v", env.OutMeta["x"], env.OutMeta["y"])
	}
}

func TestArrayAccess(t *testing.T) {
	prog := MustCompile(`
		set("len", len(data));
		set("first", data[0]);
		set("last", data[len(data) - 1]);
	`)
	env := NewEnv([]float64{10, 20, 30}, nil)
	if err := prog.Run(env, 0); err != nil {
		t.Fatal(err)
	}
	if env.OutMeta["len"] != float64(3) || env.OutMeta["first"] != float64(10) || env.OutMeta["last"] != float64(30) {
		t.Fatalf("outmeta = %v", env.OutMeta)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		src  string
		want error
		data []float64
	}{
		{"x = data[5];", ErrBadIndex, []float64{1}},
		{"x = data[0-1];", ErrBadIndex, []float64{1}},
		{"x = nope[0];", ErrNoArray, nil},
		{"x = len(nope);", ErrNoArray, nil},
		{"x = 1/0;", ErrDivideZero, nil},
		{"x = 1%0;", ErrDivideZero, nil},
		{`x = get("missing");`, ErrNoMeta, nil},
		{`x = getstr("missing");`, ErrNoMeta, nil},
		{`x = "a" + "b";`, ErrTypeClash, nil},
		{`x = sqrt("s");`, ErrTypeClash, nil},
		{`for (;;) { x = 1; }`, ErrStepLimit, nil},
	}
	for _, c := range cases {
		prog, err := Compile(c.src)
		if err != nil {
			t.Errorf("%q failed to compile: %v", c.src, err)
			continue
		}
		env := NewEnv(c.data, nil)
		steps := 0
		if errors.Is(c.want, ErrStepLimit) {
			steps = 10000
		}
		if err := prog.Run(env, steps); !errors.Is(err, c.want) {
			t.Errorf("%q: err = %v, want %v", c.src, err, c.want)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []string{
		"x = ;",
		"if x > 1 { }", // missing parens
		"x = y;",       // undefined variable
		"x = unknownfn(1);",
		"x = len(1+2);",          // len wants array name
		"x = min(1);",            // arity
		"for (i = 0; i < 3) { }", // missing clause
		"x = 1",                  // missing semicolon
		"{ x = 1; }",             // stray block
		`x = "unterminated`,
		"x = 3..4;",
		"x = $;",
		"/* unterminated",
	}
	for _, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("%q compiled but should not", src)
		}
	}
}

func TestStringMetaOps(t *testing.T) {
	prog := MustCompile(`
		if (getstr("species") == "OH") { set("match", 1); }
		setstr("note", "checked");
	`)
	env := NewEnv(nil, map[string]any{"species": "OH"})
	if err := prog.Run(env, 0); err != nil {
		t.Fatal(err)
	}
	if env.OutMeta["match"] != float64(1) || env.OutMeta["note"] != "checked" {
		t.Fatalf("outmeta = %v", env.OutMeta)
	}
}

func TestMetaNumericKinds(t *testing.T) {
	prog := MustCompile(`set("v", get("k"));`)
	for _, v := range []any{int64(7), uint64(7), 7, 7.0, true} {
		env := NewEnv(nil, map[string]any{"k": v})
		if err := prog.Run(env, 0); err != nil {
			t.Fatalf("%T: %v", v, err)
		}
		want := 7.0
		if _, isBool := v.(bool); isBool {
			want = 1.0
		}
		if env.OutMeta["v"] != want {
			t.Fatalf("%T: got %v", v, env.OutMeta["v"])
		}
	}
}

func TestHasBuiltin(t *testing.T) {
	if got := evalExpr(t, `has("x")`, NewEnv(nil, map[string]any{"x": 1.0})); got != 1 {
		t.Error("has(existing) should be 1")
	}
	if got := evalExpr(t, `has("y")`, nil); got != 0 {
		t.Error("has(missing) should be 0")
	}
}

func TestDropAndPushSemantics(t *testing.T) {
	env := NewEnv([]float64{1, 2, 3}, nil)
	MustCompile("drop();").Run(env, 0)
	if !env.Dropped {
		t.Fatal("drop() must set Dropped")
	}
	env = NewEnv([]float64{1, 2, 3}, nil)
	MustCompile("push(9);").Run(env, 0)
	if !env.Pushed || len(env.Out) != 1 || env.Out[0] != 9 {
		t.Fatalf("push: %+v", env)
	}
}

func TestCommentsIgnored(t *testing.T) {
	prog := MustCompile(`
		// line comment
		x = 1; /* block
		comment */ y = x + 1;
		set("y", y);
	`)
	env := NewEnv(nil, nil)
	if err := prog.Run(env, 0); err != nil {
		t.Fatal(err)
	}
	if env.OutMeta["y"] != float64(2) {
		t.Fatalf("y = %v", env.OutMeta["y"])
	}
}

func TestProgramConcurrentRuns(t *testing.T) {
	prog := MustCompile(`
		s = 0;
		for (i = 0; i < len(data); i = i + 1) { s = s + data[i]; }
		set("s", s);
	`)
	done := make(chan float64, 8)
	for g := 0; g < 8; g++ {
		g := g
		go func() {
			data := make([]float64, 100)
			for i := range data {
				data[i] = float64(g)
			}
			env := NewEnv(data, nil)
			if err := prog.Run(env, 0); err != nil {
				done <- math.NaN()
				return
			}
			done <- env.OutMeta["s"].(float64)
		}()
	}
	for g := 0; g < 8; g++ {
		v := <-done
		if math.IsNaN(v) {
			t.Fatal("concurrent run failed")
		}
	}
}

// TestInterpreterMatchesGoProperty cross-checks compiled arithmetic
// against a Go implementation on random inputs.
func TestInterpreterMatchesGoProperty(t *testing.T) {
	prog := MustCompile(`
		a = get("a");
		b = get("b");
		set("r", (a + b) * (a - b) + a / (abs(b) + 1));
	`)
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		env := NewEnv(nil, map[string]any{"a": a, "b": b})
		if err := prog.Run(env, 0); err != nil {
			return false
		}
		want := (a+b)*(a-b) + a/(math.Abs(b)+1)
		got := env.OutMeta["r"].(float64)
		if math.IsNaN(want) {
			return math.IsNaN(got)
		}
		return got == want || math.Abs(got-want) <= 1e-9*math.Abs(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCompileErrorHasLine(t *testing.T) {
	_, err := Compile("x = 1;\ny = $;\n")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error should carry line info: %v", err)
	}
}

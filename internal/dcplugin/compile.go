package dcplugin

import "fmt"

type opcode uint8

const (
	opConst opcode = iota // a: const index -> push consts[a]
	opLoad                // a: var slot -> push
	opStore               // a: var slot <- pop
	opIndex               // a: array name const; pops index, pushes arr[idx]
	opLen                 // a: array name const; pushes len(arr)
	opAdd
	opSub
	opMul
	opDiv
	opMod
	opEq
	opNe
	opLt
	opLe
	opGt
	opGe
	opNeg
	opNot
	opBool   // normalize top of stack to 0/1
	opJmp    // a: target pc
	opJz     // pops; jump to a if zero
	opJzKeep // jump to a if top is zero, WITHOUT popping (for &&)
	opJnzKeep
	opPop
	opCall // a: builtin id, b: arg count; pops args, pushes result
	opHalt
)

type instr struct {
	op   opcode
	a, b int
}

// Program is a compiled plug-in. Programs are immutable and safe for
// concurrent Run calls, which matters because one installed plug-in
// filters every event on a connection.
type Program struct {
	Source string
	code   []instr
	consts []value
	nvars  int
}

// value is the VM's tagged scalar.
type value struct {
	num   float64
	str   string
	isStr bool
}

func numV(f float64) value   { return value{num: f} }
func strV(s string) value    { return value{str: s, isStr: true} }
func boolV(b bool) value     { return value{num: b2f(b)} }
func (v value) truthy() bool { return v.isStr && v.str != "" || !v.isStr && v.num != 0 }

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

type compiler struct {
	code   []instr
	consts []value
	slots  map[string]int // scalar variable name -> slot
}

// Compile parses and compiles plug-in source. Compilation errors carry
// line information from the lexer/parser.
func Compile(src string) (*Program, error) {
	prog, err := parse(src)
	if err != nil {
		return nil, err
	}
	c := &compiler{slots: make(map[string]int)}
	for _, s := range prog {
		if err := c.stmt(s); err != nil {
			return nil, err
		}
	}
	c.emit(opHalt, 0, 0)
	return &Program{Source: src, code: c.code, consts: c.consts, nvars: len(c.slots)}, nil
}

// MustCompile compiles src or panics; for the built-in plug-in library.
func MustCompile(src string) *Program {
	p, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

func (c *compiler) emit(op opcode, a, b int) int {
	c.code = append(c.code, instr{op, a, b})
	return len(c.code) - 1
}

func (c *compiler) constIdx(v value) int {
	for i, cv := range c.consts {
		if cv.isStr == v.isStr && cv.num == v.num && cv.str == v.str {
			return i
		}
	}
	c.consts = append(c.consts, v)
	return len(c.consts) - 1
}

func (c *compiler) slot(name string, create bool) (int, error) {
	if s, ok := c.slots[name]; ok {
		return s, nil
	}
	if !create {
		return 0, fmt.Errorf("dcplugin: undefined variable %q (assign before use)", name)
	}
	s := len(c.slots)
	c.slots[name] = s
	return s, nil
}

func (c *compiler) stmt(s stmt) error {
	switch st := s.(type) {
	case assign:
		if err := c.expr(st.rhs); err != nil {
			return err
		}
		slot, _ := c.slot(st.name, true)
		c.emit(opStore, slot, 0)
	case exprStmt:
		if err := c.expr(st.x); err != nil {
			return err
		}
		c.emit(opPop, 0, 0)
	case ifStmt:
		if err := c.expr(st.cond); err != nil {
			return err
		}
		jz := c.emit(opJz, 0, 0)
		for _, b := range st.then {
			if err := c.stmt(b); err != nil {
				return err
			}
		}
		if len(st.elze) == 0 {
			c.code[jz].a = len(c.code)
			return nil
		}
		jend := c.emit(opJmp, 0, 0)
		c.code[jz].a = len(c.code)
		for _, b := range st.elze {
			if err := c.stmt(b); err != nil {
				return err
			}
		}
		c.code[jend].a = len(c.code)
	case forStmt:
		if st.init != nil {
			if err := c.stmt(st.init); err != nil {
				return err
			}
		}
		top := len(c.code)
		var jz int = -1
		if st.cond != nil {
			if err := c.expr(st.cond); err != nil {
				return err
			}
			jz = c.emit(opJz, 0, 0)
		}
		for _, b := range st.body {
			if err := c.stmt(b); err != nil {
				return err
			}
		}
		if st.post != nil {
			if err := c.stmt(st.post); err != nil {
				return err
			}
		}
		c.emit(opJmp, top, 0)
		if jz >= 0 {
			c.code[jz].a = len(c.code)
		}
	default:
		return fmt.Errorf("dcplugin: unknown statement %T", s)
	}
	return nil
}

var binOps = map[string]opcode{
	"+": opAdd, "-": opSub, "*": opMul, "/": opDiv, "%": opMod,
	"==": opEq, "!=": opNe, "<": opLt, "<=": opLe, ">": opGt, ">=": opGe,
}

func (c *compiler) expr(e expr) error {
	switch x := e.(type) {
	case numLit:
		c.emit(opConst, c.constIdx(numV(x.v)), 0)
	case strLit:
		c.emit(opConst, c.constIdx(strV(x.v)), 0)
	case varRef:
		slot, err := c.slot(x.name, false)
		if err != nil {
			return err
		}
		c.emit(opLoad, slot, 0)
	case indexRef:
		if err := c.expr(x.idx); err != nil {
			return err
		}
		c.emit(opIndex, c.constIdx(strV(x.arr)), 0)
	case unExpr:
		if err := c.expr(x.x); err != nil {
			return err
		}
		if x.op == "-" {
			c.emit(opNeg, 0, 0)
		} else {
			c.emit(opNot, 0, 0)
		}
	case binExpr:
		switch x.op {
		case "&&":
			if err := c.expr(x.l); err != nil {
				return err
			}
			c.emit(opBool, 0, 0)
			j := c.emit(opJzKeep, 0, 0)
			c.emit(opPop, 0, 0)
			if err := c.expr(x.r); err != nil {
				return err
			}
			c.emit(opBool, 0, 0)
			c.code[j].a = len(c.code)
		case "||":
			if err := c.expr(x.l); err != nil {
				return err
			}
			c.emit(opBool, 0, 0)
			j := c.emit(opJnzKeep, 0, 0)
			c.emit(opPop, 0, 0)
			if err := c.expr(x.r); err != nil {
				return err
			}
			c.emit(opBool, 0, 0)
			c.code[j].a = len(c.code)
		default:
			op, ok := binOps[x.op]
			if !ok {
				return fmt.Errorf("dcplugin: unknown operator %q", x.op)
			}
			if err := c.expr(x.l); err != nil {
				return err
			}
			if err := c.expr(x.r); err != nil {
				return err
			}
			c.emit(op, 0, 0)
		}
	case call:
		// len(arr) compiles to a dedicated opcode when the argument is a
		// bare array name.
		if x.name == "len" {
			if len(x.args) != 1 {
				return fmt.Errorf("dcplugin: len wants 1 argument")
			}
			if vr, ok := x.args[0].(varRef); ok {
				c.emit(opLen, c.constIdx(strV(vr.name)), 0)
				return nil
			}
			return fmt.Errorf("dcplugin: len wants an array name")
		}
		b, ok := builtinsByName[x.name]
		if !ok {
			return fmt.Errorf("dcplugin: unknown function %q", x.name)
		}
		if len(x.args) < b.minArgs || len(x.args) > b.maxArgs {
			return fmt.Errorf("dcplugin: %s wants %d..%d arguments, got %d",
				x.name, b.minArgs, b.maxArgs, len(x.args))
		}
		for _, a := range x.args {
			if err := c.expr(a); err != nil {
				return err
			}
		}
		c.emit(opCall, b.id, len(x.args))
	default:
		return fmt.Errorf("dcplugin: unknown expression %T", e)
	}
	return nil
}

package dcplugin

import "fmt"

// AST node types.
type (
	// expressions
	numLit   struct{ v float64 }
	strLit   struct{ v string }
	varRef   struct{ name string }
	indexRef struct {
		arr string
		idx expr
	}
	call struct {
		name string
		args []expr
	}
	unExpr struct {
		op string
		x  expr
	}
	binExpr struct {
		op   string
		l, r expr
	}

	// statements
	assign struct {
		name string
		rhs  expr
	}
	exprStmt struct{ x expr }
	ifStmt   struct {
		cond       expr
		then, elze []stmt
	}
	forStmt struct {
		init stmt // may be nil
		cond expr // may be nil (infinite, bounded by step limit)
		post stmt // may be nil
		body []stmt
	}
)

type expr any
type stmt any

type parser struct {
	toks []token
	pos  int
}

// parse builds the statement list for a program.
func parse(src string) ([]stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var prog []stmt
	for !p.at(tokEOF, "") {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		prog = append(prog, s)
	}
	return prog, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	t := p.cur()
	what := text
	if what == "" {
		what = fmt.Sprintf("token kind %d", kind)
	}
	return token{}, fmt.Errorf("dcplugin: line %d: expected %q, found %q", t.line, what, t.text)
}

func (p *parser) statement() (stmt, error) {
	switch {
	case p.accept(tokKeyword, "if"):
		return p.ifStatement()
	case p.accept(tokKeyword, "for"):
		return p.forStatement()
	case p.accept(tokKeyword, "var"):
		// `var x;` or `var x = expr;` — variables auto-declare on
		// assignment anyway; var is accepted for C-ish style.
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		var rhs expr = numLit{0}
		if p.accept(tokPunct, "=") {
			rhs, err = p.expression()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return assign{name: name.text, rhs: rhs}, nil
	}
	return p.simpleStatement(true)
}

// simpleStatement parses an assignment or expression statement.
// wantSemi controls the trailing ';' (for-loop clauses omit it).
func (p *parser) simpleStatement(wantSemi bool) (stmt, error) {
	// Lookahead for `ident = ...` (assignment) vs. expression.
	var s stmt
	if p.at(tokIdent, "") && p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == "=" {
		name := p.next()
		p.next() // '='
		rhs, err := p.expression()
		if err != nil {
			return nil, err
		}
		s = assign{name: name.text, rhs: rhs}
	} else {
		x, err := p.expression()
		if err != nil {
			return nil, err
		}
		s = exprStmt{x: x}
	}
	if wantSemi {
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (p *parser) ifStatement() (stmt, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	var elze []stmt
	if p.accept(tokKeyword, "else") {
		if p.accept(tokKeyword, "if") {
			nested, err := p.ifStatement()
			if err != nil {
				return nil, err
			}
			elze = []stmt{nested}
		} else {
			elze, err = p.block()
			if err != nil {
				return nil, err
			}
		}
	}
	return ifStmt{cond: cond, then: then, elze: elze}, nil
}

func (p *parser) forStatement() (stmt, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var init, post stmt
	var cond expr
	var err error
	if !p.at(tokPunct, ";") {
		init, err = p.simpleStatement(false)
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	if !p.at(tokPunct, ";") {
		cond, err = p.expression()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	if !p.at(tokPunct, ")") {
		post, err = p.simpleStatement(false)
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return forStmt{init: init, cond: cond, post: post, body: body}, nil
}

func (p *parser) block() ([]stmt, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	var out []stmt
	for !p.accept(tokPunct, "}") {
		if p.at(tokEOF, "") {
			return nil, fmt.Errorf("dcplugin: unexpected EOF inside block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Pratt expression parsing.
var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"==": 3, "!=": 3,
	"<": 4, "<=": 4, ">": 4, ">=": 4,
	"+": 5, "-": 5,
	"*": 6, "/": 6, "%": 6,
}

func (p *parser) expression() (expr, error) { return p.binaryExpr(0) }

func (p *parser) binaryExpr(minPrec int) (expr, error) {
	lhs, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		prec, isOp := binPrec[t.text]
		if t.kind != tokPunct || !isOp || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.binaryExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = binExpr{op: t.text, l: lhs, r: rhs}
	}
}

func (p *parser) unaryExpr() (expr, error) {
	if p.accept(tokPunct, "-") {
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return unExpr{op: "-", x: x}, nil
	}
	if p.accept(tokPunct, "!") {
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return unExpr{op: "!", x: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (expr, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		return numLit{t.num}, nil
	case tokString:
		return strLit{t.text}, nil
	case tokIdent:
		switch {
		case p.accept(tokPunct, "("):
			var args []expr
			for !p.accept(tokPunct, ")") {
				if len(args) > 0 {
					if _, err := p.expect(tokPunct, ","); err != nil {
						return nil, err
					}
				}
				a, err := p.expression()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
			}
			return call{name: t.text, args: args}, nil
		case p.accept(tokPunct, "["):
			idx, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			return indexRef{arr: t.text, idx: idx}, nil
		default:
			return varRef{t.text}, nil
		}
	case tokPunct:
		if t.text == "(" {
			x, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return x, nil
		}
	}
	return nil, fmt.Errorf("dcplugin: line %d: unexpected token %q", t.line, t.text)
}

package dcplugin

import (
	"math"
	"testing"
	"testing/quick"

	"flexio/internal/evpath"
)

func TestFloatsBytesRoundTrip(t *testing.T) {
	f := func(fs []float64) bool {
		for _, x := range fs {
			if math.IsNaN(x) {
				return true
			}
		}
		got := BytesToFloats(FloatsToBytes(fs))
		if len(got) != len(fs) {
			return false
		}
		for i := range fs {
			if got[i] != fs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBytesToFloatsIgnoresTrailing(t *testing.T) {
	b := append(FloatsToBytes([]float64{1, 2}), 0xFF, 0xFF)
	if got := BytesToFloats(b); len(got) != 2 {
		t.Fatalf("len = %d, want 2", len(got))
	}
}

func runPlugin(t *testing.T, p Plugin, data []float64, meta evpath.Record) *evpath.Event {
	t.Helper()
	filter, err := p.Filter()
	if err != nil {
		t.Fatalf("plugin %s: %v", p.Name, err)
	}
	if meta == nil {
		meta = evpath.Record{}
	}
	ev := &evpath.Event{Meta: meta, Data: FloatsToBytes(data)}
	out, err := filter(ev)
	if err != nil {
		t.Fatalf("plugin %s run: %v", p.Name, err)
	}
	return out
}

func TestSamplePlugin(t *testing.T) {
	data := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	out := runPlugin(t, SamplePlugin(4), data, nil)
	got := BytesToFloats(out.Data)
	want := []float64{0, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("sampled %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sampled %v, want %v", got, want)
		}
	}
	if s, _ := out.Meta.GetFloat("dc.sample_stride"); s != 4 {
		t.Fatalf("stride meta = %v", out.Meta["dc.sample_stride"])
	}
	if name, _ := out.Meta.GetString("dc.plugin"); name != "sample-1of4" {
		t.Fatalf("plugin marker = %q", name)
	}
}

func TestSelectRangePlugin(t *testing.T) {
	// Particles with stride 2: (pos, vel). Select vel in [0.5, 1.0).
	data := []float64{
		10, 0.1, // rejected
		20, 0.6, // kept
		30, 0.99, // kept
		40, 1.0, // rejected (exclusive hi)
	}
	out := runPlugin(t, SelectRangePlugin(2, 1, 0.5, 1.0), data, nil)
	got := BytesToFloats(out.Data)
	if len(got) != 4 || got[0] != 20 || got[2] != 30 {
		t.Fatalf("selected %v", got)
	}
}

func TestSelectRangeSelectivity(t *testing.T) {
	// The paper's GTS query keeps ~20% of particles; verify the plugin
	// respects an arbitrary selectivity on uniform data.
	const n = 1000
	const stride = 7
	data := make([]float64, n*stride)
	for i := 0; i < n; i++ {
		for a := 0; a < stride; a++ {
			data[i*stride+a] = float64(i) / n // attribute ~ U[0,1)
		}
	}
	out := runPlugin(t, SelectRangePlugin(stride, 3, 0.0, 0.2), data, nil)
	kept := len(BytesToFloats(out.Data)) / stride
	if kept < 150 || kept > 250 {
		t.Fatalf("kept %d of %d particles, want ~200", kept, n)
	}
}

func TestBoundingBoxPlugin(t *testing.T) {
	out := runPlugin(t, BoundingBoxPlugin(), []float64{3, -1, 7, 2}, nil)
	lo, _ := out.Meta.GetFloat("dc.bbox_min")
	hi, _ := out.Meta.GetFloat("dc.bbox_max")
	if lo != -1 || hi != 7 {
		t.Fatalf("bbox = [%g, %g]", lo, hi)
	}
	// Payload passes through untouched (no pushes).
	if got := BytesToFloats(out.Data); len(got) != 4 {
		t.Fatalf("payload altered: %v", got)
	}
}

func TestUnitConvertPlugin(t *testing.T) {
	out := runPlugin(t, UnitConvertPlugin(0.01), []float64{100, 250}, nil)
	got := BytesToFloats(out.Data)
	if got[0] != 1 || got[1] != 2.5 {
		t.Fatalf("converted %v", got)
	}
}

func TestAnnotatePlugin(t *testing.T) {
	out := runPlugin(t, AnnotatePlugin("origin", "gts-rank-3"), nil, evpath.Record{"step": int64(4)})
	if v, _ := out.Meta.GetString("origin"); v != "gts-rank-3" {
		t.Fatalf("annotation = %v", out.Meta)
	}
	if v, _ := out.Meta.GetInt("step"); v != 4 {
		t.Fatal("original meta must be preserved")
	}
}

func TestMinStepPluginDrops(t *testing.T) {
	p := MinStepPlugin(10)
	filter, err := p.Filter()
	if err != nil {
		t.Fatal(err)
	}
	early := &evpath.Event{Meta: evpath.Record{"step": int64(5)}, Data: nil}
	if out, err := filter(early); err != nil || out != nil {
		t.Fatalf("early event should drop: %v, %v", out, err)
	}
	late := &evpath.Event{Meta: evpath.Record{"step": int64(15)}, Data: nil}
	if out, err := filter(late); err != nil || out == nil {
		t.Fatalf("late event should pass: %v, %v", out, err)
	}
}

func TestPluginCompileErrorSurfaces(t *testing.T) {
	if _, err := (Plugin{Name: "bad", Source: "x = ;"}).Filter(); err == nil {
		t.Fatal("bad plugin source must fail Filter()")
	}
}

func TestPluginChainThroughFilterStones(t *testing.T) {
	// Compose two plug-ins in a stone chain: unit conversion then
	// bounding box — verifying plug-ins stack along the I/O path.
	conv, err := UnitConvertPlugin(2).Filter()
	if err != nil {
		t.Fatal(err)
	}
	bbox, err := BoundingBoxPlugin().Filter()
	if err != nil {
		t.Fatal(err)
	}
	var final *evpath.Event
	term := &evpath.TerminalStone{Handler: func(ev *evpath.Event) error {
		final = ev
		return nil
	}}
	chain := evpath.NewFilterStone(conv, evpath.NewFilterStone(bbox, term))
	err = chain.Submit(&evpath.Event{Meta: evpath.Record{}, Data: FloatsToBytes([]float64{1, 5, 3})})
	if err != nil {
		t.Fatal(err)
	}
	if final == nil {
		t.Fatal("event lost in chain")
	}
	lo, _ := final.Meta.GetFloat("dc.bbox_min")
	hi, _ := final.Meta.GetFloat("dc.bbox_max")
	if lo != 2 || hi != 10 {
		t.Fatalf("bbox after conversion = [%g, %g], want [2, 10]", lo, hi)
	}
}

func TestPluginMigrationViaSourceString(t *testing.T) {
	// The mobility property: serialize the plugin source into a record,
	// "ship" it, recompile at the destination, and get identical
	// behaviour.
	orig := SelectRangePlugin(2, 1, 0.0, 0.5)
	wire, err := evpath.Encode(evpath.Record{"name": orig.Name, "src": orig.Source})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := evpath.Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	name, _ := rec.GetString("name")
	src, _ := rec.GetString("src")
	shipped := Plugin{Name: name, Source: src}

	data := []float64{1, 0.4, 2, 0.6}
	a := runPlugin(t, orig, data, nil)
	b := runPlugin(t, shipped, data, nil)
	ga, gb := BytesToFloats(a.Data), BytesToFloats(b.Data)
	if len(ga) != len(gb) || len(ga) != 2 || ga[0] != gb[0] {
		t.Fatalf("migrated plugin differs: %v vs %v", ga, gb)
	}
}

func BenchmarkDCPluginCompile(b *testing.B) {
	src := SelectRangePlugin(7, 3, 0.2, 0.8).Source
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDCPluginExecute(b *testing.B) {
	prog := MustCompile(SelectRangePlugin(7, 3, 0.2, 0.8).Source)
	data := make([]float64, 7*1000)
	for i := range data {
		data[i] = float64(i%100) / 100
	}
	b.SetBytes(int64(len(data) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := NewEnv(data, nil)
		if err := prog.Run(env, 0); err != nil {
			b.Fatal(err)
		}
	}
}

package dcplugin

import (
	"encoding/binary"
	"fmt"
	"math"

	"flexio/internal/evpath"
)

// Plugin pairs a name with mobile source code. Plugins are specified as
// parameters to FlexIO read calls (reader side) and may be deployed into
// the writer's address space at runtime; only the source string travels.
type Plugin struct {
	Name   string
	Source string
}

// Filter compiles the plug-in and wraps it as an EVPath filter function
// operating on events whose payload is a packed little-endian []float64 —
// the layout of every array FlexIO's applications emit (both GTS particle
// attributes and S3D species fields are doubles).
//
// Event semantics: drop() discards the event; push()es replace the
// payload; set()/setstr() fields are merged into the event metadata, with
// "dc.<plugin>" stamped to mark the conditioning (data markup).
func (p Plugin) Filter() (evpath.FilterFunc, error) {
	prog, err := Compile(p.Source)
	if err != nil {
		return nil, fmt.Errorf("dcplugin: compiling %q: %w", p.Name, err)
	}
	name := p.Name
	return func(ev *evpath.Event) (*evpath.Event, error) {
		data := BytesToFloats(ev.Data)
		meta := map[string]any(ev.Meta)
		env := NewEnv(data, meta)
		if err := prog.Run(env, 0); err != nil {
			return nil, fmt.Errorf("dcplugin: running %q: %w", name, err)
		}
		if env.Dropped {
			return nil, nil
		}
		out := &evpath.Event{Meta: evpath.Record{}, Data: ev.Data}
		for k, v := range ev.Meta {
			out.Meta[k] = v
		}
		for k, v := range env.OutMeta {
			out.Meta[k] = v
		}
		if env.Pushed {
			out.Data = FloatsToBytes(env.Out)
			out.Meta["dc.elements"] = int64(len(env.Out))
		}
		out.Meta["dc.plugin"] = name
		return out, nil
	}, nil
}

// BytesToFloats reinterprets a little-endian packed float64 payload.
// Trailing bytes that do not fill a float are ignored.
func BytesToFloats(b []byte) []float64 {
	n := len(b) / 8
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// FloatsToBytes packs floats little-endian.
func FloatsToBytes(fs []float64) []byte {
	out := make([]byte, len(fs)*8)
	for i, f := range fs {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(f))
	}
	return out
}

// ---------------------------------------------------------------------
// Built-in plug-in library: the conditioning operations Section II.F
// names as "useful examples" — sampling, bounding box, unit conversion,
// selection, annotation. Each is a source template so it still exercises
// the full compile-at-destination path.

// SamplePlugin keeps every k-th element of the payload.
func SamplePlugin(k int) Plugin {
	return Plugin{
		Name: fmt.Sprintf("sample-1of%d", k),
		Source: fmt.Sprintf(`
			// keep every %d-th element
			i = 0;
			for (; i < len(data); i = i + %d) {
				push(data[i]);
			}
			set("dc.sample_stride", %d);
		`, k, k, k),
	}
}

// SelectRangePlugin keeps records (of `stride` consecutive values) whose
// attribute at offset attr lies in [lo, hi) — the paper's range query on
// particle velocity, preserving whole particles.
func SelectRangePlugin(stride, attr int, lo, hi float64) Plugin {
	return Plugin{
		Name: "select-range",
		Source: fmt.Sprintf(`
			i = 0;
			for (; i + %d <= len(data); i = i + %d) {
				v = data[i + %d];
				if (v >= %g && v < %g) {
					j = 0;
					for (; j < %d; j = j + 1) {
						push(data[i + j]);
					}
				}
			}
		`, stride, stride, attr, lo, hi, stride),
	}
}

// BoundingBoxPlugin annotates the event with the min/max of the payload
// (a 1-D bounding box; fields dc.bbox_min / dc.bbox_max).
func BoundingBoxPlugin() Plugin {
	return Plugin{
		Name: "bounding-box",
		Source: `
			if (len(data) > 0) {
				lo = data[0];
				hi = data[0];
				i = 1;
				for (; i < len(data); i = i + 1) {
					lo = min(lo, data[i]);
					hi = max(hi, data[i]);
				}
				set("dc.bbox_min", lo);
				set("dc.bbox_max", hi);
			}
		`,
	}
}

// UnitConvertPlugin multiplies every element by factor (e.g. cm -> m).
func UnitConvertPlugin(factor float64) Plugin {
	return Plugin{
		Name: "unit-convert",
		Source: fmt.Sprintf(`
			i = 0;
			for (; i < len(data); i = i + 1) {
				push(data[i] * %g);
			}
			set("dc.unit_factor", %g);
		`, factor, factor),
	}
}

// AnnotatePlugin stamps a string marker onto events (data markup).
func AnnotatePlugin(key, val string) Plugin {
	return Plugin{
		Name:   "annotate",
		Source: fmt.Sprintf(`setstr(%q, %q);`, key, val),
	}
}

// MinStepPlugin drops events below a timestep threshold (temporal
// selection driven by metadata).
func MinStepPlugin(minStep int64) Plugin {
	return Plugin{
		Name: "min-step",
		Source: fmt.Sprintf(`
			if (has("step") && get("step") < %d) {
				drop();
			}
		`, minStep),
	}
}

// Package dcplugin implements FlexIO's Data Conditioning Plug-ins
// (Section II.F of the paper): stateless mobile codelets created on the
// reader side to customize writer-side outputs on the fly — data markup,
// annotation, sampling, bounding boxes, unit conversion, selection.
//
// The original system programs plug-ins in a subset of C compiled at
// runtime by C-on-Demand (CoD) dynamic binary generation. That mechanism
// does not exist in Go, so this package provides the equivalent: a small
// C-like expression/statement language with a lexer, recursive-descent +
// Pratt parser, bytecode compiler, and stack VM. Plug-in *source strings*
// travel across FlexIO transports and are compiled and installed in the
// destination process at runtime, which preserves CoD's essential
// property — code mobility along the I/O path — with identical semantics
// at this scale.
//
// # Language
//
// One numeric type (64-bit float, like C doubles which dominate the
// paper's workloads) plus string literals for metadata operations.
//
//	x = expr;                     assignment (variables auto-declare)
//	data[i]                       read-only input array indexing
//	if (cond) { ... } else { ... }
//	for (init; cond; post) { ... }
//	push(expr);                   append to the output array
//	drop();                       discard the event entirely
//	set("name", expr);            set numeric output metadata
//	setstr("name", "value");      set string output metadata
//	get("name"), getstr("name")   read input metadata
//	len(arr), abs, sqrt, floor, ceil, min, max, pow
//
// After execution: a drop() wins; otherwise, if any push() occurred the
// output data is the pushed values, else the input passes through
// unchanged. Execution is bounded by a step limit, making foreign
// codelets safe to host.
package dcplugin

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokNumber
	tokString
	tokIdent
	tokPunct // operators and delimiters
	tokKeyword
)

type token struct {
	kind tokKind
	text string
	num  float64
	pos  int // byte offset, for errors
	line int
}

var keywords = map[string]bool{
	"if": true, "else": true, "for": true, "var": true,
}

// lexer converts plug-in source into tokens.
type lexer struct {
	src    string
	pos    int
	line   int
	tokens []token
}

// lex tokenizes src.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return nil, l.errf("unterminated block comment")
			}
			l.line += strings.Count(l.src[l.pos:l.pos+2+end+2], "\n")
			l.pos += 2 + end + 2
		case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '"':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case isIdentStart(c):
			l.lexIdent()
		default:
			if err := l.lexPunct(); err != nil {
				return nil, err
			}
		}
	}
	l.tokens = append(l.tokens, token{kind: tokEOF, pos: l.pos, line: l.line})
	return l.tokens, nil
}

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("dcplugin: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) lexNumber() error {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			goto done
		}
	}
done:
	text := l.src[start:l.pos]
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return l.errf("bad number %q", text)
	}
	l.tokens = append(l.tokens, token{kind: tokNumber, text: text, num: v, pos: start, line: l.line})
	return nil
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			l.pos++
			l.tokens = append(l.tokens, token{kind: tokString, text: sb.String(), pos: start, line: l.line})
			return nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			switch l.src[l.pos] {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '"':
				sb.WriteByte('"')
			case '\\':
				sb.WriteByte('\\')
			default:
				return l.errf("bad escape \\%c", l.src[l.pos])
			}
			l.pos++
			continue
		}
		if c == '\n' {
			return l.errf("unterminated string")
		}
		sb.WriteByte(c)
		l.pos++
	}
	return l.errf("unterminated string")
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	text := l.src[start:l.pos]
	kind := tokIdent
	if keywords[text] {
		kind = tokKeyword
	}
	l.tokens = append(l.tokens, token{kind: kind, text: text, pos: start, line: l.line})
}

var twoCharOps = map[string]bool{
	"==": true, "!=": true, "<=": true, ">=": true, "&&": true, "||": true,
}

func (l *lexer) lexPunct() error {
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		if twoCharOps[two] {
			l.tokens = append(l.tokens, token{kind: tokPunct, text: two, pos: l.pos, line: l.line})
			l.pos += 2
			return nil
		}
	}
	c := l.src[l.pos]
	if strings.ContainsRune("+-*/%<>!=(){}[];,", rune(c)) {
		l.tokens = append(l.tokens, token{kind: tokPunct, text: string(c), pos: l.pos, line: l.line})
		l.pos++
		return nil
	}
	return l.errf("unexpected character %q", c)
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || unicode.IsLetter(rune(c)) }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }

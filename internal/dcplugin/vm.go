package dcplugin

import (
	"errors"
	"fmt"
	"math"
)

// Execution errors.
var (
	ErrStepLimit  = errors.New("dcplugin: step limit exceeded")
	ErrBadIndex   = errors.New("dcplugin: array index out of range")
	ErrNoArray    = errors.New("dcplugin: unknown input array")
	ErrTypeClash  = errors.New("dcplugin: type mismatch")
	ErrNoMeta     = errors.New("dcplugin: missing metadata field")
	ErrDivideZero = errors.New("dcplugin: division by zero")
)

// DefaultMaxSteps bounds a single Run; plug-ins are "typically lightweight
// in terms of compute" (Section II.F), so a generous bound catches only
// runaway codelets.
const DefaultMaxSteps = 50_000_000

// Env is a plug-in's execution environment: the event being conditioned.
type Env struct {
	// In holds named read-only input arrays; FlexIO installs the event
	// payload as "data".
	In map[string][]float64
	// Meta holds input metadata (numeric and string fields).
	Meta map[string]any
	// Out receives values appended by push(); if non-empty after Run, it
	// replaces the event payload.
	Out []float64
	// OutMeta receives set()/setstr() fields, merged over the event's
	// metadata (annotation/markup).
	OutMeta map[string]any
	// Dropped is set by drop(): discard the event entirely.
	Dropped bool
	// Pushed records whether push() was called (distinguishes "plug-in
	// produced an empty selection" from "plug-in did not transform").
	Pushed bool
}

// NewEnv builds an environment around a payload array and metadata.
func NewEnv(data []float64, meta map[string]any) *Env {
	if meta == nil {
		meta = map[string]any{}
	}
	return &Env{
		In:      map[string][]float64{"data": data},
		Meta:    meta,
		OutMeta: map[string]any{},
	}
}

type builtin struct {
	id      int
	name    string
	minArgs int
	maxArgs int
	fn      func(env *Env, args []value) (value, error)
}

var builtinTable []*builtin
var builtinsByName = map[string]*builtin{}

func registerBuiltin(name string, minA, maxA int, fn func(*Env, []value) (value, error)) {
	b := &builtin{id: len(builtinTable), name: name, minArgs: minA, maxArgs: maxA, fn: fn}
	builtinTable = append(builtinTable, b)
	builtinsByName[name] = b
}

func wantNum(v value) (float64, error) {
	if v.isStr {
		return 0, fmt.Errorf("%w: want number, have string %q", ErrTypeClash, v.str)
	}
	return v.num, nil
}

func wantStr(v value) (string, error) {
	if !v.isStr {
		return "", fmt.Errorf("%w: want string, have number %g", ErrTypeClash, v.num)
	}
	return v.str, nil
}

func init() {
	num1 := func(f func(float64) float64) func(*Env, []value) (value, error) {
		return func(_ *Env, a []value) (value, error) {
			x, err := wantNum(a[0])
			if err != nil {
				return value{}, err
			}
			return numV(f(x)), nil
		}
	}
	registerBuiltin("abs", 1, 1, num1(math.Abs))
	registerBuiltin("sqrt", 1, 1, num1(math.Sqrt))
	registerBuiltin("floor", 1, 1, num1(math.Floor))
	registerBuiltin("ceil", 1, 1, num1(math.Ceil))
	registerBuiltin("exp", 1, 1, num1(math.Exp))
	registerBuiltin("log", 1, 1, num1(math.Log))
	registerBuiltin("min", 2, 2, func(_ *Env, a []value) (value, error) {
		x, err := wantNum(a[0])
		if err != nil {
			return value{}, err
		}
		y, err := wantNum(a[1])
		if err != nil {
			return value{}, err
		}
		return numV(math.Min(x, y)), nil
	})
	registerBuiltin("max", 2, 2, func(_ *Env, a []value) (value, error) {
		x, err := wantNum(a[0])
		if err != nil {
			return value{}, err
		}
		y, err := wantNum(a[1])
		if err != nil {
			return value{}, err
		}
		return numV(math.Max(x, y)), nil
	})
	registerBuiltin("pow", 2, 2, func(_ *Env, a []value) (value, error) {
		x, err := wantNum(a[0])
		if err != nil {
			return value{}, err
		}
		y, err := wantNum(a[1])
		if err != nil {
			return value{}, err
		}
		return numV(math.Pow(x, y)), nil
	})
	registerBuiltin("push", 1, 1, func(env *Env, a []value) (value, error) {
		x, err := wantNum(a[0])
		if err != nil {
			return value{}, err
		}
		env.Out = append(env.Out, x)
		env.Pushed = true
		return numV(0), nil
	})
	registerBuiltin("drop", 0, 0, func(env *Env, _ []value) (value, error) {
		env.Dropped = true
		return numV(0), nil
	})
	registerBuiltin("get", 1, 1, func(env *Env, a []value) (value, error) {
		name, err := wantStr(a[0])
		if err != nil {
			return value{}, err
		}
		v, ok := env.Meta[name]
		if !ok {
			return value{}, fmt.Errorf("%w: %q", ErrNoMeta, name)
		}
		switch n := v.(type) {
		case float64:
			return numV(n), nil
		case int64:
			return numV(float64(n)), nil
		case uint64:
			return numV(float64(n)), nil
		case int:
			return numV(float64(n)), nil
		case bool:
			return boolV(n), nil
		}
		return value{}, fmt.Errorf("%w: %q is not numeric", ErrTypeClash, name)
	})
	registerBuiltin("getstr", 1, 1, func(env *Env, a []value) (value, error) {
		name, err := wantStr(a[0])
		if err != nil {
			return value{}, err
		}
		v, ok := env.Meta[name]
		if !ok {
			return value{}, fmt.Errorf("%w: %q", ErrNoMeta, name)
		}
		s, ok := v.(string)
		if !ok {
			return value{}, fmt.Errorf("%w: %q is not a string", ErrTypeClash, name)
		}
		return strV(s), nil
	})
	registerBuiltin("has", 1, 1, func(env *Env, a []value) (value, error) {
		name, err := wantStr(a[0])
		if err != nil {
			return value{}, err
		}
		_, ok := env.Meta[name]
		return boolV(ok), nil
	})
	registerBuiltin("set", 2, 2, func(env *Env, a []value) (value, error) {
		name, err := wantStr(a[0])
		if err != nil {
			return value{}, err
		}
		x, err := wantNum(a[1])
		if err != nil {
			return value{}, err
		}
		env.OutMeta[name] = x
		return numV(0), nil
	})
	registerBuiltin("setstr", 2, 2, func(env *Env, a []value) (value, error) {
		name, err := wantStr(a[0])
		if err != nil {
			return value{}, err
		}
		s, err := wantStr(a[1])
		if err != nil {
			return value{}, err
		}
		env.OutMeta[name] = s
		return numV(0), nil
	})
}

// Run executes the program against env, bounded by maxSteps (0 uses
// DefaultMaxSteps).
func (p *Program) Run(env *Env, maxSteps int) error {
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	vars := make([]value, p.nvars)
	stack := make([]value, 0, 32)
	pop := func() value {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}
	steps := 0
	for pc := 0; pc < len(p.code); {
		steps++
		if steps > maxSteps {
			return ErrStepLimit
		}
		in := p.code[pc]
		switch in.op {
		case opConst:
			stack = append(stack, p.consts[in.a])
		case opLoad:
			stack = append(stack, vars[in.a])
		case opStore:
			vars[in.a] = pop()
		case opIndex:
			idx, err := wantNum(pop())
			if err != nil {
				return err
			}
			name := p.consts[in.a].str
			arr, ok := env.In[name]
			if !ok {
				return fmt.Errorf("%w: %q", ErrNoArray, name)
			}
			i := int(idx)
			if i < 0 || i >= len(arr) {
				return fmt.Errorf("%w: %s[%d] of %d", ErrBadIndex, name, i, len(arr))
			}
			stack = append(stack, numV(arr[i]))
		case opLen:
			name := p.consts[in.a].str
			arr, ok := env.In[name]
			if !ok {
				return fmt.Errorf("%w: %q", ErrNoArray, name)
			}
			stack = append(stack, numV(float64(len(arr))))
		case opAdd, opSub, opMul, opDiv, opMod,
			opEq, opNe, opLt, opLe, opGt, opGe:
			r := pop()
			l := pop()
			v, err := binOp(in.op, l, r)
			if err != nil {
				return err
			}
			stack = append(stack, v)
		case opNeg:
			x, err := wantNum(pop())
			if err != nil {
				return err
			}
			stack = append(stack, numV(-x))
		case opNot:
			stack = append(stack, boolV(!pop().truthy()))
		case opBool:
			stack[len(stack)-1] = boolV(stack[len(stack)-1].truthy())
		case opJmp:
			pc = in.a
			continue
		case opJz:
			if !pop().truthy() {
				pc = in.a
				continue
			}
		case opJzKeep:
			if !stack[len(stack)-1].truthy() {
				pc = in.a
				continue
			}
		case opJnzKeep:
			if stack[len(stack)-1].truthy() {
				pc = in.a
				continue
			}
		case opPop:
			pop()
		case opCall:
			b := builtinTable[in.a]
			args := make([]value, in.b)
			for i := in.b - 1; i >= 0; i-- {
				args[i] = pop()
			}
			v, err := b.fn(env, args)
			if err != nil {
				return err
			}
			stack = append(stack, v)
		case opHalt:
			return nil
		default:
			return fmt.Errorf("dcplugin: bad opcode %d", in.op)
		}
		pc++
	}
	return nil
}

func binOp(op opcode, l, r value) (value, error) {
	// String equality is supported; everything else needs numbers.
	if l.isStr || r.isStr {
		if l.isStr && r.isStr {
			switch op {
			case opEq:
				return boolV(l.str == r.str), nil
			case opNe:
				return boolV(l.str != r.str), nil
			}
		}
		return value{}, fmt.Errorf("%w: operator on string operand", ErrTypeClash)
	}
	a, b := l.num, r.num
	switch op {
	case opAdd:
		return numV(a + b), nil
	case opSub:
		return numV(a - b), nil
	case opMul:
		return numV(a * b), nil
	case opDiv:
		if b == 0 {
			return value{}, ErrDivideZero
		}
		return numV(a / b), nil
	case opMod:
		if b == 0 {
			return value{}, ErrDivideZero
		}
		return numV(math.Mod(a, b)), nil
	case opEq:
		return boolV(a == b), nil
	case opNe:
		return boolV(a != b), nil
	case opLt:
		return boolV(a < b), nil
	case opLe:
		return boolV(a <= b), nil
	case opGt:
		return boolV(a > b), nil
	case opGe:
		return boolV(a >= b), nil
	}
	return value{}, fmt.Errorf("dcplugin: bad binary opcode %d", op)
}

// GTS pipeline: the paper's first application scenario end to end. A
// 4-rank GTS proxy emits zion and electron particle data every step
// through FlexIO's process-group-oriented pattern; 4 helper-core
// analytics ranks consume their partner ranks' groups and run the full
// chain — distribution function, ~20% velocity range query, 1-D and 2-D
// histograms. A data-conditioning plug-in deployed from the reader side
// samples the electron array in the transport before it is delivered.
package main

import (
	"fmt"
	"log"
	"sync"

	"flexio/internal/adios"
	"flexio/internal/apps/gts"
	"flexio/internal/dcplugin"
	"flexio/internal/directory"
	"flexio/internal/evpath"
	"flexio/internal/machine"
	"flexio/internal/rdma"
)

const (
	ranks = 4
	steps = 3
	// Small particle counts keep the example quick; the production run
	// uses ~2M particles (110 MB) per rank.
	baseParticles = 5000
)

func main() {
	net := evpath.NewNet(rdma.NewFabric(machine.Smoky(8).Net))
	ctx := adios.NewContext(net, directory.NewMem(), "", nil) // stream engine defaults
	io, err := ctx.DeclareIO("particles")
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	// --- GTS side ---
	for rank := 0; rank < ranks; rank++ {
		rank := rank
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, err := io.OpenWriter("gts.particles", rank, ranks)
			if err != nil {
				log.Fatal(err)
			}
			for s := 0; s < steps; s++ {
				if err := w.BeginStep(int64(s)); err != nil {
					log.Fatal(err)
				}
				// Particle counts drift across steps (the effect that
				// motivates the RDMA registration cache).
				n := gts.ParticleCount(baseParticles, rank, s)
				zions := gts.Generate(gts.Zion, rank, s, n)
				electrons := gts.Generate(gts.Electron, rank, s, n)
				if err := w.WriteProcessGroup("zion", 8, dcplugin.FloatsToBytes(zions)); err != nil {
					log.Fatal(err)
				}
				if err := w.WriteProcessGroup("electron", 8, dcplugin.FloatsToBytes(electrons)); err != nil {
					log.Fatal(err)
				}
				if err := w.EndStep(); err != nil {
					log.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				log.Fatal(err)
			}
		}()
	}

	// --- Analytics side: helper-core style, rank i claims writer i ---
	var mu sync.Mutex
	type stat struct{ total, selected int }
	stats := map[int]*stat{}
	for rank := 0; rank < ranks; rank++ {
		rank := rank
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := io.OpenReader("gts.particles", rank, ranks)
			if err != nil {
				log.Fatal(err)
			}
			if rank == 0 {
				// Deploy a sampling plug-in into the I/O path: electrons
				// are decimated 4:1 in the transport before delivery.
				if err := r.InstallPlugin(electronSampler()); err != nil {
					log.Fatal(err)
				}
			}
			if err := r.SelectProcessGroups([]int{rank}); err != nil {
				log.Fatal(err)
			}
			for {
				step, ok := r.BeginStep()
				if !ok {
					break
				}
				groups, err := r.ReadProcessGroups("zion")
				if err != nil {
					log.Fatal(err)
				}
				for _, payload := range groups {
					particles := dcplugin.BytesToFloats(payload)
					a, err := gts.AnalyzeStep(particles)
					if err != nil {
						log.Fatal(err)
					}
					mu.Lock()
					st := stats[rank]
					if st == nil {
						st = &stat{}
						stats[rank] = st
					}
					st.total += a.TotalCount
					st.selected += a.Selected
					mu.Unlock()
					if rank == 0 {
						fmt.Printf("step %d rank %d: %d zions, query kept %.1f%%, dist-fn peak bin %d\n",
							step, rank, a.TotalCount,
							100*float64(a.Selected)/float64(a.TotalCount), argmax(a.DistFn))
					}
				}
				r.EndStep() //nolint:errcheck
			}
			r.Close() //nolint:errcheck
		}()
	}
	wg.Wait()

	var total, selected int
	for _, st := range stats {
		total += st.total
		selected += st.selected
	}
	fmt.Printf("gts-pipeline: analyzed %d particles across %d ranks x %d steps; overall selectivity %.1f%%\n",
		total, ranks, steps, 100*float64(selected)/float64(total))
}

// electronSampler builds the mobile codelet deployed into the I/O path:
// it keeps every 4th *whole particle* (7 consecutive attributes) and only
// touches the electron array, letting zions pass unmodified — variable
// selection, record-aware sampling and annotation in one plug-in.
func electronSampler() dcplugin.Plugin {
	return dcplugin.Plugin{
		Name: "electron-sampler",
		Source: fmt.Sprintf(`
			if (getstr("var") == "electron") {
				stride = %d;
				for (i = 0; i + stride <= len(data); i = i + 4*stride) {
					for (j = 0; j < stride; j = j + 1) {
						push(data[i + j]);
					}
				}
				set("dc.sample", 4);
			}
		`, gts.NumAttrs),
	}
}

func argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

// Quickstart: couple a 4-rank writer "simulation" to a 2-rank reader
// "analytics" through a FlexIO stream, exactly as Figure 3 of the paper:
// a 2-D global array block-decomposed among the writers is re-distributed
// to the readers' row decomposition by the middleware. Switching the
// engine from "stream" to "file" in the embedded XML moves the same code
// to offline placement with zero application changes.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"sync"

	"flexio/internal/adios"
	"flexio/internal/directory"
	"flexio/internal/evpath"
	"flexio/internal/machine"
	"flexio/internal/ndarray"
	"flexio/internal/rdma"
)

const configXML = `
<adios-config>
  <io name="demo">
    <engine type="stream">
      <parameter name="caching" value="CACHING_ALL"/>
      <parameter name="batching" value="true"/>
    </engine>
  </io>
</adios-config>`

const (
	nWriters = 4
	nReaders = 2
	steps    = 3
)

func main() {
	cfg, err := adios.ParseConfig(strings.NewReader(configXML))
	if err != nil {
		log.Fatal(err)
	}
	// The FlexIO environment: connection manager over an emulated Gemini
	// fabric, an in-process directory service, and a scratch dir for the
	// file-mode engine.
	fsRoot, err := os.MkdirTemp("", "flexio-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(fsRoot)
	net := evpath.NewNet(rdma.NewFabric(machine.Titan(4).Net))
	ctx := adios.NewContext(net, directory.NewMem(), fsRoot, cfg)
	io, err := ctx.DeclareIO("demo")
	if err != nil {
		log.Fatal(err)
	}

	shape := []int64{8, 8}
	wdec, _ := ndarray.BlockDecompose(shape, []int{2, 2}) // 4 writers, 2x2 grid
	rdec, _ := ndarray.BlockDecompose(shape, []int{2, 1}) // 2 readers, rows

	var wg sync.WaitGroup
	// --- Simulation side: each rank writes its block every step ---
	for rank := 0; rank < nWriters; rank++ {
		rank := rank
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, err := io.OpenWriter("quickstart", rank, nWriters)
			if err != nil {
				log.Fatalf("writer %d: %v", rank, err)
			}
			box := wdec.Boxes[rank]
			for s := int64(0); s < steps; s++ {
				if err := w.BeginStep(s); err != nil {
					log.Fatal(err)
				}
				data := make([]float64, box.NumElements())
				for i := range data {
					data[i] = float64(rank)*100 + float64(s)
				}
				if err := w.WriteFloat64s("field", shape, box, data); err != nil {
					log.Fatal(err)
				}
				if err := w.EndStep(); err != nil {
					log.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				log.Fatal(err)
			}
		}()
	}

	// --- Analytics side: each rank reads its row band ---
	results := make([][]string, nReaders)
	for rank := 0; rank < nReaders; rank++ {
		rank := rank
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := io.OpenReader("quickstart", rank, nReaders)
			if err != nil {
				log.Fatalf("reader %d: %v", rank, err)
			}
			if err := r.SelectArray("field", rdec.Boxes[rank]); err != nil {
				log.Fatal(err)
			}
			for {
				step, ok := r.BeginStep()
				if !ok {
					break // End-of-Stream: the simulation closed the file
				}
				data, box, err := r.ReadFloat64s("field")
				if err != nil {
					log.Fatal(err)
				}
				var sum float64
				for _, v := range data {
					sum += v
				}
				results[rank] = append(results[rank],
					fmt.Sprintf("reader %d step %d: box %v mean=%.2f", rank, step, box, sum/float64(len(data))))
				r.EndStep() //nolint:errcheck
			}
			r.Close() //nolint:errcheck
		}()
	}
	wg.Wait()
	for _, rs := range results {
		for _, line := range rs {
			fmt.Println(line)
		}
	}
	fmt.Println("quickstart: OK (engine:", io.Engine()+")")
}

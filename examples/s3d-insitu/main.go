// S3D in-situ visualization: the paper's second application scenario. An
// 8-rank S3D_Box proxy advances 22 species fields on a 3-D block-
// decomposed domain and writes them as global arrays every few cycles;
// 2 staging-style reader ranks re-assemble sub-volumes via FlexIO's MxN
// redistribution, volume-render their halves, composite, and write a PPM
// image per selected species — the paper's full S3D -> staging ->
// visualization pipeline in miniature.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"flexio/internal/adios"
	"flexio/internal/apps/s3d"
	"flexio/internal/dcplugin"
	"flexio/internal/directory"
	"flexio/internal/evpath"
	"flexio/internal/machine"
	"flexio/internal/ndarray"
	"flexio/internal/rdma"
)

const (
	nSim    = 8
	nViz    = 2
	ioSteps = 2
	cycles  = 3 // solver cycles between I/O actions
	species = 3 // render the first few species to keep the example quick
)

func main() {
	outDir, err := os.MkdirTemp("", "flexio-s3d")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("writing images to", outDir)

	net := evpath.NewNet(rdma.NewFabric(machine.Titan(8).Net))
	ctx := adios.NewContext(net, directory.NewMem(), outDir, nil)
	io, err := ctx.DeclareIO("species")
	if err != nil {
		log.Fatal(err)
	}

	dec, err := s3d.GlobalDecomposition(nSim)
	if err != nil {
		log.Fatal(err)
	}
	globalShape := dec.Global.Shape()
	// Readers split the global volume along X.
	rdec, err := ndarray.BlockDecompose(globalShape, []int{nViz, 1, 1})
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	// --- S3D_Box side ---
	for rank := 0; rank < nSim; rank++ {
		rank := rank
		wg.Add(1)
		go func() {
			defer wg.Done()
			solver, err := s3d.NewSolver(rank, s3d.LocalShape)
			if err != nil {
				log.Fatal(err)
			}
			w, err := io.OpenWriter("s3d.species", rank, nSim)
			if err != nil {
				log.Fatal(err)
			}
			for step := 0; step < ioSteps; step++ {
				for c := 0; c < cycles; c++ {
					solver.Step()
				}
				if err := w.BeginStep(int64(step)); err != nil {
					log.Fatal(err)
				}
				for sp := 0; sp < species; sp++ {
					field, err := solver.Species(sp)
					if err != nil {
						log.Fatal(err)
					}
					if err := w.WriteFloat64s(s3d.SpeciesName(sp), globalShape, dec.Boxes[rank], field); err != nil {
						log.Fatal(err)
					}
				}
				if err := w.EndStep(); err != nil {
					log.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				log.Fatal(err)
			}
		}()
	}

	// --- Visualization side ---
	images := make(chan string, ioSteps*species*nViz)
	for rank := 0; rank < nViz; rank++ {
		rank := rank
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := io.OpenReader("s3d.species", rank, nViz)
			if err != nil {
				log.Fatal(err)
			}
			for sp := 0; sp < species; sp++ {
				if err := r.SelectArray(s3d.SpeciesName(sp), rdec.Boxes[rank]); err != nil {
					log.Fatal(err)
				}
			}
			for {
				step, ok := r.BeginStep()
				if !ok {
					break
				}
				for sp := 0; sp < species; sp++ {
					raw, box, err := r.ReadBytes(s3d.SpeciesName(sp))
					if err != nil {
						log.Fatal(err)
					}
					img, err := s3d.RenderVolume(dcplugin.BytesToFloats(raw), box.Shape())
					if err != nil {
						log.Fatal(err)
					}
					name := filepath.Join(outDir,
						fmt.Sprintf("step%d-%s-part%d.ppm", step, s3d.SpeciesName(sp), rank))
					f, err := os.Create(name)
					if err != nil {
						log.Fatal(err)
					}
					if err := s3d.WritePPM(f, img); err != nil {
						log.Fatal(err)
					}
					f.Close() //nolint:errcheck
					images <- name
				}
				r.EndStep() //nolint:errcheck
			}
			r.Close() //nolint:errcheck
		}()
	}
	wg.Wait()
	close(images)
	count := 0
	for range images {
		count++
	}
	fmt.Printf("s3d-insitu: rendered %d sub-volume images (%d steps x %d species x %d viz ranks)\n",
		count, ioSteps, species, nViz)
}

// Placement tuning: Section III end to end. Builds the GTS coupled-run
// instance, applies all three placement algorithms plus the inline and
// staging baselines, evaluates each with the coupled-execution simulator,
// and prints the paper's three metrics — Total Execution Time, CPU hours,
// and inter-node Data Movement Volume — side by side. This is the
// decision support a FlexIO user runs before submitting a production job.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"flexio/internal/apps/gts"
	"flexio/internal/coupled"
	"flexio/internal/graph"
	"flexio/internal/machine"
	"flexio/internal/placement"
)

func main() {
	m := machine.Smoky(40)
	app := gts.Model()
	app.NUMAStraddlePenalty = 0.07
	const nSim, steps = 64, 50

	build := func(nAna, threads int) *placement.Spec {
		g := graph.New(nSim + nAna)
		for i := 0; i < nSim; i++ {
			if nAna > 0 {
				g.AddEdge(i, nSim+i*nAna/nSim, gts.OutputBytesPerProc)
			}
			g.AddEdge(i, (i+1)%nSim, 20e6)
		}
		for i := 0; i < nAna-1; i++ {
			g.AddEdge(nSim+i, nSim+i+1, 2e6)
		}
		return &placement.Spec{Machine: m, NSim: nSim, NAna: nAna, SimThreads: threads, Comm: g}
	}

	// Resource allocation (holistic policy): match the analytics
	// consumption rate to the simulation's generation rate.
	interval := app.SimComputePerInterval(4)
	totalBytes := gts.OutputBytesPerProc * float64(nSim)
	nAnaStaging := placement.SyncAllocation(func(p int) float64 {
		return app.AnaComputePerStep(p, totalBytes)
	}, interval, nSim)
	fmt.Printf("resource allocation: %d analytics processes for %d GTS processes (sync rate matching)\n\n",
		nAnaStaging, nSim)

	type entry struct {
		name string
		p    *placement.Placement
		cfg  coupled.Config
	}
	var entries []entry

	inl, err := placement.InlinePlacement(build(0, 4))
	if err != nil {
		log.Fatal(err)
	}
	entries = append(entries, entry{"inline (4 threads)", inl, coupled.Config{}})

	hcSpec := build(nSim, 3)
	inter := graph.New(nSim * 2)
	for i := 0; i < nSim; i++ {
		inter.AddEdge(i, nSim+i, gts.OutputBytesPerProc)
	}
	if da, err := placement.DataAware(hcSpec, inter); err == nil {
		entries = append(entries, entry{"helper-core (data-aware)", da, coupled.Config{}})
	}
	if ho, err := placement.Holistic(hcSpec); err == nil {
		entries = append(entries, entry{"helper-core (holistic)", ho, coupled.Config{}})
	}
	if ta, err := placement.TopologyAware(hcSpec); err == nil {
		entries = append(entries, entry{"helper-core (topology-aware)", ta, coupled.Config{}})
	}
	if st, err := placement.StagingPlacement(build(nAnaStaging, 4)); err == nil {
		entries = append(entries, entry{"staging (async, paced gets)", st,
			coupled.Config{Async: true, PacingFraction: 0.5}})
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "placement\tkind\tTET (s)\tvs inline\tCPU-hours\tinter-node MB/step\tsim slowdown")
	var inlineTET float64
	for _, e := range entries {
		cfg := e.cfg
		cfg.App = app
		cfg.Place = e.p
		cfg.Steps = steps
		r, err := coupled.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if inlineTET == 0 {
			inlineTET = r.TotalTime
		}
		fmt.Fprintf(tw, "%s\t%v\t%.1f\t%+.1f%%\t%.2f\t%.0f\t%.3f\n",
			e.name, r.Kind, r.TotalTime, (r.TotalTime/inlineTET-1)*100,
			r.CPUHours, r.InterNodeBytes/1e6, r.SimSlowdown)
	}
	tw.Flush() //nolint:errcheck
	lb := coupled.SoloTime(app, 4, steps)
	fmt.Printf("\nlower bound (GTS solo, 4 threads, no I/O): %.1f s\n", lb)
}

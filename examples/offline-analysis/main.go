// Offline placement: the rightmost option in the paper's Figure 1. The
// "simulation" runs to completion writing BP-like step containers through
// the file engine; a completely separate "analytics job" then opens the
// same stream name and replays every step — using the *identical*
// read-side code the online examples use. The only difference between
// this and the stream examples is one word in the XML configuration
// ("users can seamlessly switch analytics to run offline when there are
// insufficient online resources").
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"sync"

	"flexio/internal/adios"
	"flexio/internal/apps/gts"
	"flexio/internal/dcplugin"
	"flexio/internal/directory"
	"flexio/internal/evpath"
	"flexio/internal/machine"
	"flexio/internal/rdma"
)

const configXML = `
<adios-config>
  <io name="particles">
    <engine type="file"/>   <!-- switch to "stream" for online analytics -->
  </io>
</adios-config>`

const (
	ranks = 4
	steps = 3
)

func main() {
	cfg, err := adios.ParseConfig(strings.NewReader(configXML))
	if err != nil {
		log.Fatal(err)
	}
	fsRoot, err := os.MkdirTemp("", "flexio-offline")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(fsRoot)
	net := evpath.NewNet(rdma.NewFabric(machine.Smoky(4).Net))
	ctx := adios.NewContext(net, directory.NewMem(), fsRoot, cfg)
	io, err := ctx.DeclareIO("particles")
	if err != nil {
		log.Fatal(err)
	}

	// --- Job 1: the simulation runs and exits ---
	var sim sync.WaitGroup
	for rank := 0; rank < ranks; rank++ {
		rank := rank
		sim.Add(1)
		go func() {
			defer sim.Done()
			w, err := io.OpenWriter("gts.particles", rank, ranks)
			if err != nil {
				log.Fatal(err)
			}
			for s := 0; s < steps; s++ {
				if err := w.BeginStep(int64(s)); err != nil {
					log.Fatal(err)
				}
				zions := gts.Generate(gts.Zion, rank, s, 2000)
				if err := w.WriteProcessGroup("zion", 8, dcplugin.FloatsToBytes(zions)); err != nil {
					log.Fatal(err)
				}
				if err := w.EndStep(); err != nil {
					log.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				log.Fatal(err)
			}
		}()
	}
	sim.Wait()
	entries, _ := os.ReadDir(fsRoot + "/gts.particles.bp")
	fmt.Printf("simulation finished: %d artifacts in %s/gts.particles.bp\n", len(entries), fsRoot)

	// --- Job 2 (later): offline analytics over the stored steps ---
	r, err := io.OpenReader("gts.particles", 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := r.SelectProcessGroups([]int{0, 1, 2, 3}); err != nil {
		log.Fatal(err)
	}
	for {
		step, ok := r.BeginStep()
		if !ok {
			break // ".done" marker reached
		}
		groups, err := r.ReadProcessGroups("zion")
		if err != nil {
			log.Fatal(err)
		}
		total, selected := 0, 0
		for _, raw := range groups {
			a, err := gts.AnalyzeStep(dcplugin.BytesToFloats(raw))
			if err != nil {
				log.Fatal(err)
			}
			total += a.TotalCount
			selected += a.Selected
		}
		fmt.Printf("offline step %d: %d particles from %d writers, query kept %.1f%%\n",
			step, total, len(groups), 100*float64(selected)/float64(total))
		r.EndStep() //nolint:errcheck
	}
	r.Close() //nolint:errcheck
	fmt.Println("offline-analysis: OK")
}

package main

// Ablation benchmarks for the design choices DESIGN.md §4 calls out. Each
// toggles exactly one mechanism and reports the affected metric as a
// custom benchmark unit, so `go test -bench Ablation` prints the
// trade-off table directly.

import (
	"fmt"
	"testing"

	"flexio/internal/apps/gts"
	"flexio/internal/apps/s3d"
	"flexio/internal/core"
	"flexio/internal/coupled"
	"flexio/internal/graph"
	"flexio/internal/machine"
	"flexio/internal/placement"
)

// s3dStagingFixture builds a 1024-core S3D staging run on Smoky.
func s3dStagingFixture(b *testing.B) (*placement.Placement, coupled.AppModel) {
	b.Helper()
	m := machine.Smoky(80)
	app := s3d.Model()
	const nSim = 1024
	nAna := nSim / s3d.WritersPerReader
	g := graph.New(nSim + nAna)
	for i := 0; i < nSim; i++ {
		g.AddEdge(i, nSim+i*nAna/nSim, s3d.OutputBytesPerProc)
		g.AddEdge(i, (i+1)%nSim, 50e6)
		if i+128 < nSim {
			g.AddEdge(i, i+128, 50e6)
		}
	}
	for i := 0; i < nAna-1; i++ {
		g.AddEdge(nSim+i, nSim+i+1, 30e6)
	}
	spec := &placement.Spec{Machine: m, NSim: nSim, NAna: nAna, SimThreads: 1, Comm: g}
	p, err := placement.Holistic(spec)
	if err != nil {
		b.Fatal(err)
	}
	return p, app
}

// BenchmarkAblationHandshakeCaching sweeps the three caching levels
// (DESIGN §4.2): visible per-step movement time, S3D at 1K cores.
func BenchmarkAblationHandshakeCaching(b *testing.B) {
	p, app := s3dStagingFixture(b)
	for _, c := range []core.CachingLevel{core.NoCaching, core.CachingLocal, core.CachingAll} {
		c := c
		b.Run(c.String(), func(b *testing.B) {
			var vis float64
			for i := 0; i < b.N; i++ {
				r, err := coupled.Run(coupled.Config{
					App: app, Place: p, Steps: 50, Async: true,
					Caching: c, WritersPerReader: s3d.WritersPerReader,
				})
				if err != nil {
					b.Fatal(err)
				}
				vis = r.Phases.SimVisIO
			}
			b.ReportMetric(vis*1000, "visibleIO_ms/step")
		})
	}
}

// BenchmarkAblationBatching toggles variable batching (DESIGN §4.3).
func BenchmarkAblationBatching(b *testing.B) {
	p, app := s3dStagingFixture(b)
	for _, batch := range []bool{false, true} {
		batch := batch
		b.Run(fmt.Sprintf("batching=%v", batch), func(b *testing.B) {
			var vis float64
			for i := 0; i < b.N; i++ {
				r, err := coupled.Run(coupled.Config{
					App: app, Place: p, Steps: 50, Async: true,
					Caching: core.NoCaching, Batching: batch,
					WritersPerReader: s3d.WritersPerReader,
				})
				if err != nil {
					b.Fatal(err)
				}
				vis = r.Phases.SimVisIO
			}
			b.ReportMetric(vis*1000, "visibleIO_ms/step")
		})
	}
}

// BenchmarkAblationSyncAsync toggles write synchrony (DESIGN §4.4): S3D
// staging, where the paper's tuning sets asynchronous writes to take the
// (handshake-heavy) movement off the simulation's critical path.
func BenchmarkAblationSyncAsync(b *testing.B) {
	p, app := s3dStagingFixture(b)
	for _, async := range []bool{false, true} {
		async := async
		b.Run(fmt.Sprintf("async=%v", async), func(b *testing.B) {
			var tet, vis float64
			for i := 0; i < b.N; i++ {
				r, err := coupled.Run(coupled.Config{
					App: app, Place: p, Steps: 50, Async: async,
					Caching: core.NoCaching, PacingFraction: 0.5,
					WritersPerReader: s3d.WritersPerReader,
				})
				if err != nil {
					b.Fatal(err)
				}
				tet = r.TotalTime
				vis = r.Phases.SimVisIO
			}
			b.ReportMetric(tet, "TET_s")
			b.ReportMetric(vis*1000, "visibleIO_ms/step")
		})
	}
}

// BenchmarkAblationGetPacing sweeps the Get-scheduler pacing fraction
// (DESIGN §4.5): GTS staging slowdown vs. movement time.
func BenchmarkAblationGetPacing(b *testing.B) {
	m := machine.Smoky(40)
	app := gts.Model()
	const nSim = 64
	g := graph.New(nSim * 2)
	for i := 0; i < nSim; i++ {
		g.AddEdge(i, nSim+i, gts.OutputBytesPerProc)
	}
	spec := &placement.Spec{Machine: m, NSim: nSim, NAna: nSim, SimThreads: 4, Comm: g}
	p, err := placement.StagingPlacement(spec)
	if err != nil {
		b.Fatal(err)
	}
	for _, pacing := range []float64{1.0, 0.5, 0.25} {
		pacing := pacing
		b.Run(fmt.Sprintf("pacing=%.2f", pacing), func(b *testing.B) {
			var slow, move float64
			for i := 0; i < b.N; i++ {
				r, err := coupled.Run(coupled.Config{
					App: app, Place: p, Steps: 50, Async: true, PacingFraction: pacing,
				})
				if err != nil {
					b.Fatal(err)
				}
				slow = (r.SimSlowdown - 1) * 100
				move = r.MoveTime
			}
			b.ReportMetric(slow, "simSlowdown_%")
			b.ReportMetric(move, "moveTime_s")
		})
	}
}

// BenchmarkAblationNUMAPinning toggles producer-local buffer pinning
// (DESIGN §4.6): helper-core GTS movement time with and without pinning.
func BenchmarkAblationNUMAPinning(b *testing.B) {
	m := machine.Smoky(16)
	app := gts.Model()
	app.NUMAStraddlePenalty = 0.07
	const nSim = 32
	g := graph.New(nSim * 2)
	for i := 0; i < nSim; i++ {
		g.AddEdge(i, nSim+i, gts.OutputBytesPerProc)
		g.AddEdge(i, (i+1)%nSim, 20e6)
	}
	spec := &placement.Spec{Machine: m, NSim: nSim, NAna: nSim, SimThreads: 3, Comm: g}
	// Holistic's linear layout leaves some producer/consumer pairs in
	// different NUMA domains, which is exactly where buffer pinning acts.
	p, err := placement.Holistic(spec)
	if err != nil {
		b.Fatal(err)
	}
	for _, pinned := range []bool{false, true} {
		pinned := pinned
		b.Run(fmt.Sprintf("pinned=%v", pinned), func(b *testing.B) {
			pc := *p
			pc.NUMAPinnedBuffers = pinned
			var move float64
			for i := 0; i < b.N; i++ {
				r, err := coupled.Run(coupled.Config{App: app, Place: &pc, Steps: 50})
				if err != nil {
					b.Fatal(err)
				}
				move = r.MoveTime * 1000
			}
			b.ReportMetric(move, "moveTime_ms/step")
		})
	}
}

// BenchmarkAblationMapperDepth compares the 2-level holistic tree against
// the full cache-hierarchy tree (DESIGN §4.7) on the GTS instance.
func BenchmarkAblationMapperDepth(b *testing.B) {
	m := machine.Smoky(16)
	app := gts.Model()
	app.NUMAStraddlePenalty = 0.07
	const nSim = 32
	g := graph.New(nSim * 2)
	for i := 0; i < nSim; i++ {
		g.AddEdge(i, nSim+i, gts.OutputBytesPerProc)
		g.AddEdge(i, (i+1)%nSim, 20e6)
	}
	spec := &placement.Spec{Machine: m, NSim: nSim, NAna: nSim, SimThreads: 3, Comm: g}
	for _, depth := range []string{"two-level", "cache-topology"} {
		depth := depth
		b.Run(depth, func(b *testing.B) {
			var tet float64
			for i := 0; i < b.N; i++ {
				var p *placement.Placement
				var err error
				if depth == "two-level" {
					p, err = placement.Holistic(spec)
				} else {
					p, err = placement.TopologyAware(spec)
				}
				if err != nil {
					b.Fatal(err)
				}
				r, err := coupled.Run(coupled.Config{App: app, Place: p, Steps: 50})
				if err != nil {
					b.Fatal(err)
				}
				tet = r.TotalTime
			}
			b.ReportMetric(tet, "TET_s")
		})
	}
}

// Command flexbench regenerates the FlexIO paper's evaluation artifacts:
// every figure and table from Section IV plus the Figure 4 transport
// microbenchmark. Run a single experiment with -exp or everything with
// -exp all.
//
//	flexbench -list
//	flexbench -exp fig6a
//	flexbench -exp all
package main

import (
	"flag"
	"fmt"
	"os"

	"flexio/internal/experiment"
)

func main() {
	// The multiproc experiment re-execs this binary as its directory
	// server and flexnode daemon children; dispatch before flag parsing.
	experiment.MaybeChildMain()

	exp := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	list := flag.Bool("list", false, "list experiment ids and exit")
	metrics := flag.String("metrics", "", "serve live monitoring over HTTP at host:port during the trace experiment (e.g. 127.0.0.1:8123)")
	perturb := flag.Bool("perturb", false, "inject a model perturbation into the replay experiment's second run (must be detected as a divergence)")
	flag.Parse()
	experiment.SetMetricsAddr(*metrics)
	experiment.SetReplayPerturb(*perturb)

	if *list {
		for _, id := range experiment.IDs() {
			fmt.Printf("%-10s %s\n", id, experiment.Registry[id].Desc)
		}
		return
	}
	if *exp == "all" {
		if err := experiment.RunAll(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "flexbench:", err)
			os.Exit(1)
		}
		return
	}
	driver, ok := experiment.Registry[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "flexbench: unknown experiment %q; known: %v\n", *exp, experiment.IDs())
		os.Exit(2)
	}
	fig, err := driver.Run()
	if fig != nil {
		fig.Fprint(os.Stdout) //nolint:errcheck
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexbench:", err)
		os.Exit(1)
	}
}

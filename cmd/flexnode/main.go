// Command flexnode runs one FlexIO deployment daemon: it registers with
// a directory server under a liveness lease, serves a TCP (optionally
// TLS) evpath listener, exposes live metrics, and either idles as a
// placement target (-role serve) or takes one of the four coupled-run
// roles of the deterministic verification scenario. A full deployment is
// a dirserver plus one flexnode per process:
//
//	dirserver -addr 127.0.0.1:7878 &
//	flexnode -dir 127.0.0.1:7878 -name wl -role writer-leader -ranks 0 -drop-after 9 &
//	flexnode -dir 127.0.0.1:7878 -name ww -role writer-worker -ranks 1 &
//	flexnode -dir 127.0.0.1:7878 -name rl -role reader-leader -ranks 0 &
//	flexnode -dir 127.0.0.1:7878 -name rw -role reader-worker -ranks 1
//
// See examples/multiproc for the walkthrough and `flexbench -exp
// multiproc` for the automated version of the same drill.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"flexio/internal/directory"
	"flexio/internal/evpath"
	"flexio/internal/flexnode"
)

func main() {
	name := flag.String("name", "", "node name for the directory liveness lease (required)")
	dirAddr := flag.String("dir", "127.0.0.1:7878", "directory server address")
	bind := flag.String("bind", "127.0.0.1:0", "evpath wire listener bind address")
	useTLS := flag.Bool("tls", true, "serve TLS with an ephemeral directory-pinned identity")
	lease := flag.Duration("lease", 2*time.Second, "directory lease TTL (0 disables leasing)")
	metrics := flag.String("metrics", "", "serve /metrics and /health at host:port (e.g. 127.0.0.1:8123)")
	role := flag.String("role", "serve", "serve | writer-leader | writer-worker | reader-leader | reader-worker")
	stream := flag.String("stream", "multiproc", "scenario stream name")
	ranks := flag.String("ranks", "", "comma-separated scenario ranks this node runs (e.g. 0 or 0,1)")
	m := flag.Int("m", 2, "scenario writer rank count")
	n := flag.Int("n", 2, "scenario reader rank count")
	steps := flag.Int("steps", 6, "scenario timestep count")
	reconfigAfter := flag.Int("reconfig-after", 2, "reconfigure readers after this step (-1 disables)")
	dropAfter := flag.Int("drop-after", 0, "writer leader: inject a disconnect after this many wire sends (0 disables)")
	plugin := flag.String("plugin", "", "reader leader: DC plug-in source to ship to the writer side")
	flag.Parse()

	if *name == "" {
		fmt.Fprintln(os.Stderr, "flexnode: -name is required")
		os.Exit(2)
	}
	cfg := flexnode.RoleConfig{
		Node: flexnode.Config{
			Name:        *name,
			Dir:         &directory.Client{Addr: *dirAddr},
			Bind:        *bind,
			TLS:         *useTLS,
			LeaseTTL:    *lease,
			MetricsAddr: *metrics,
		},
		Scenario: flexnode.Scenario{
			Stream:        *stream,
			M:             *m,
			N:             *n,
			Steps:         *steps,
			ReconfigAfter: *reconfigAfter,
		},
		Faults: evpath.TCPFaults{DropAfterSends: *dropAfter},
		Plugin: *plugin,
	}
	for _, f := range strings.Split(*ranks, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		r, err := strconv.Atoi(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flexnode: bad -ranks entry %q: %v\n", f, err)
			os.Exit(2)
		}
		cfg.Ranks = append(cfg.Ranks, r)
	}

	var err error
	switch *role {
	case "serve":
		err = serve(cfg.Node)
	case "writer-leader":
		err = flexnode.RunWriterLeader(cfg)
	case "writer-worker":
		err = flexnode.RunWriterWorker(cfg)
	case "reader-leader":
		err = flexnode.RunReaderLeader(cfg)
	case "reader-worker":
		err = flexnode.RunReaderWorker(cfg)
	default:
		fmt.Fprintf(os.Stderr, "flexnode: unknown role %q\n", *role)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexnode:", err)
		os.Exit(1)
	}
}

// serve runs the bare daemon — registered, leased, serving its wire
// listener and metrics — until SIGINT/SIGTERM, then drains cleanly.
func serve(cfg flexnode.Config) error {
	d, err := flexnode.Start(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("flexnode %s serving at %s", cfg.Name, d.Advertise())
	if addr := d.MetricsAddr(); addr != "" {
		fmt.Printf(" (metrics http://%s/metrics)", addr)
	}
	fmt.Println()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("draining")
	return d.Close()
}

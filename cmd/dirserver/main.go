// Command dirserver runs FlexIO's directory server as a standalone TCP
// service (Section II.C.1): simulations register stream names with their
// coordinator's contact information; analytics jobs look them up. The
// server participates only in discovery, never in data movement.
//
//	dirserver -addr :7878
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"flexio/internal/directory"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7878", "listen address")
	flag.Parse()

	srv, err := directory.Serve(*addr, directory.NewMem())
	if err != nil {
		fmt.Fprintln(os.Stderr, "dirserver:", err)
		os.Exit(1)
	}
	fmt.Printf("flexio directory server listening on %s\n", srv.Addr())
	fmt.Println("protocol: REG <stream> <contact> [ttl_ms] | RENEW <stream> <ttl_ms> | GET <stream> | WAIT <stream> <millis> | DEL <stream>")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	srv.Close() //nolint:errcheck
}

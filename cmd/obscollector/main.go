// Command obscollector runs FlexIO's fleet observability collector as a
// standalone service: it discovers live flexnode daemons through the
// deployment's directory server (their leased obs! registrations),
// scrapes each one's monitor endpoints on a jittered interval, and
// serves the merged fleet view — cross-process stitched step traces,
// fleet histograms, stitched critical paths and per-tenant SLO burn
// rates — under /fleet/*.
//
//	obscollector -dir 127.0.0.1:7878 -listen 127.0.0.1:9090 \
//	    -interval 250ms -slo acme:5:0.1 -slo batch:50:0.25
//
// Each -slo is tenant:target_ms:budget — tenant, per-step latency
// objective in milliseconds, and the tolerated violation fraction.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"flexio/internal/directory"
	"flexio/internal/obsplane"
)

// sloFlags accumulates repeated -slo tenant:target_ms:budget values.
type sloFlags []obsplane.SLO

func (s *sloFlags) String() string { return fmt.Sprintf("%d objectives", len(*s)) }

func (s *sloFlags) Set(v string) error {
	parts := strings.Split(v, ":")
	if len(parts) != 3 {
		return fmt.Errorf("want tenant:target_ms:budget, got %q", v)
	}
	ms, err := strconv.ParseFloat(parts[1], 64)
	if err != nil || ms <= 0 {
		return fmt.Errorf("bad target_ms in %q", v)
	}
	budget, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || budget <= 0 || budget > 1 {
		return fmt.Errorf("bad budget in %q (want a fraction in (0,1])", v)
	}
	*s = append(*s, obsplane.SLO{
		Tenant: parts[0],
		Target: time.Duration(ms * float64(time.Millisecond)),
		Budget: budget,
	})
	return nil
}

func main() {
	dirAddr := flag.String("dir", "127.0.0.1:7878", "directory server address")
	listen := flag.String("listen", "127.0.0.1:9090", "fleet HTTP listen address")
	interval := flag.Duration("interval", 250*time.Millisecond, "scrape sweep interval (jittered)")
	timeout := flag.Duration("timeout", 2*time.Second, "per-daemon scrape timeout")
	var slos sloFlags
	flag.Var(&slos, "slo", "per-tenant objective tenant:target_ms:budget (repeatable)")
	flag.Parse()

	c := obsplane.New(&directory.Client{Addr: *dirAddr}, obsplane.Options{
		Interval: *interval,
		Timeout:  *timeout,
		SLOs:     slos,
		OnBreach: func(s obsplane.SLOStatus) {
			fmt.Printf("SLO BREACH tenant=%s burn=%.2f violations=%d/%d worst=%.3fs (episode %d)\n",
				s.Tenant, s.BurnRate, s.Violations, s.Steps, s.WorstLatency, s.Episodes)
		},
	})
	addr, err := c.Serve(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "obscollector:", err)
		os.Exit(1)
	}
	c.Start()
	fmt.Printf("flexio fleet collector on http://%s (directory %s, %d SLOs)\n", addr, *dirAddr, len(slos))
	fmt.Println("endpoints: /fleet/metrics /fleet/spans /fleet/critpath /fleet/slo")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	c.Close() //nolint:errcheck
}

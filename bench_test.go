// Package-level benchmarks: one per table/figure of the FlexIO paper's
// evaluation (regenerating the artifact and reporting its headline metric
// as a custom benchmark unit), plus transport micro-benchmarks backing the
// design sections. Run everything with:
//
//	go test -bench=. -benchmem
//
// The figure benchmarks measure the experiment drivers in virtual time —
// the reported custom metrics (seconds of Total Execution Time, MB/s of
// modeled bandwidth) are the paper's quantities, while ns/op measures the
// harness itself.
package main

import (
	"fmt"
	"testing"

	"flexio/internal/dcplugin"
	"flexio/internal/evpath"
	"flexio/internal/experiment"
	"flexio/internal/machine"
	"flexio/internal/ndarray"
	"flexio/internal/rdma"
	"flexio/internal/shm"
)

// eventFor wraps a payload as a transport event for plug-in benches.
func eventFor(payload []byte) *evpath.Event {
	return &evpath.Event{Meta: evpath.Record{"var": "zion"}, Data: payload}
}

// figureBench runs an experiment driver and reports series endpoints as
// custom metrics.
func figureBench(b *testing.B, id string, metric func(*experiment.Figure) map[string]float64) {
	b.Helper()
	driver, ok := experiment.Registry[id]
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var fig *experiment.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = driver.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	for name, v := range metric(fig) {
		b.ReportMetric(v, name)
	}
}

// lastY returns the last point of the labelled series.
func lastY(fig *experiment.Figure, label string) float64 {
	for _, s := range fig.Series {
		if s.Label == label && len(s.Y) > 0 {
			return s.Y[len(s.Y)-1]
		}
	}
	return 0
}

// BenchmarkFig4RDMARegistration regenerates Figure 4 and reports the
// modeled bandwidth of each mode at 1 MiB messages.
func BenchmarkFig4RDMARegistration(b *testing.B) {
	figureBench(b, "fig4", func(fig *experiment.Figure) map[string]float64 {
		out := map[string]float64{}
		for _, s := range fig.Series {
			for i, x := range s.X {
				if x == float64(1<<20) {
					key := "dynamic_MB/s"
					switch s.Label {
					case "Static Allocation and Registration":
						key = "static_MB/s"
					case "Registration Cache (FlexIO)":
						key = "cached_MB/s"
					}
					out[key] = s.Y[i]
				}
			}
		}
		return out
	})
}

// BenchmarkFig6GTSSmoky regenerates Figure 6(a) and reports the largest-
// scale Total Execution Times.
func BenchmarkFig6GTSSmoky(b *testing.B) {
	figureBench(b, "fig6a", func(fig *experiment.Figure) map[string]float64 {
		return map[string]float64{
			"inline_s":  lastY(fig, "Inline"),
			"topo_s":    lastY(fig, "HelperCore(TopoAware)"),
			"staging_s": lastY(fig, "Staging"),
			"bound_s":   lastY(fig, "LowerBound"),
		}
	})
}

// BenchmarkFig6GTSTitan regenerates Figure 6(b).
func BenchmarkFig6GTSTitan(b *testing.B) {
	figureBench(b, "fig6b", func(fig *experiment.Figure) map[string]float64 {
		return map[string]float64{
			"inline_s": lastY(fig, "Inline"),
			"topo_s":   lastY(fig, "HelperCore(TopoAware)"),
			"bound_s":  lastY(fig, "LowerBound"),
		}
	})
}

// BenchmarkFig7GTSCases regenerates Figure 7's per-phase breakdown.
func BenchmarkFig7GTSCases(b *testing.B) {
	figureBench(b, "fig7", func(fig *experiment.Figure) map[string]float64 {
		out := map[string]float64{}
		for i, s := range fig.Series {
			var total float64
			for _, y := range s.Y {
				total += y
			}
			out[fmt.Sprintf("case%d_s", i+1)] = total
		}
		return out
	})
}

// BenchmarkFig8CacheInterference regenerates Figure 8 and reports the
// miss-rate inflation.
func BenchmarkFig8CacheInterference(b *testing.B) {
	figureBench(b, "fig8", func(fig *experiment.Figure) map[string]float64 {
		solo := fig.Series[0].Y[0]
		shared := fig.Series[1].Y[0]
		return map[string]float64{
			"solo_MPKI":   solo,
			"shared_MPKI": shared,
			"inflation_%": (shared/solo - 1) * 100,
		}
	})
}

// BenchmarkFig9S3DSmoky regenerates Figure 9(a).
func BenchmarkFig9S3DSmoky(b *testing.B) {
	figureBench(b, "fig9a", func(fig *experiment.Figure) map[string]float64 {
		return map[string]float64{
			"inline_s":  lastY(fig, "Inline"),
			"staging_s": lastY(fig, "Staging(TopoAware)"),
			"bound_s":   lastY(fig, "LowerBound"),
		}
	})
}

// BenchmarkFig9S3DTitan regenerates Figure 9(b).
func BenchmarkFig9S3DTitan(b *testing.B) {
	figureBench(b, "fig9b", func(fig *experiment.Figure) map[string]float64 {
		return map[string]float64{
			"inline_s":  lastY(fig, "Inline"),
			"staging_s": lastY(fig, "Staging(TopoAware)"),
			"bound_s":   lastY(fig, "LowerBound"),
		}
	})
}

// BenchmarkS3DTuning regenerates the Section IV.B.1 movement-tuning table.
func BenchmarkS3DTuning(b *testing.B) {
	figureBench(b, "s3dtune", func(fig *experiment.Figure) map[string]float64 {
		out := map[string]float64{}
		for _, s := range fig.Series {
			prefix := "titan"
			if len(s.Label) >= 5 && s.Label[:5] == "Smoky" {
				prefix = "smoky"
			}
			out[prefix+"_untuned_s"] = s.Y[0]
			out[prefix+"_tuned_s"] = s.Y[1]
		}
		return out
	})
}

// BenchmarkClaims re-derives all headline claims.
func BenchmarkClaims(b *testing.B) {
	figureBench(b, "claims", func(fig *experiment.Figure) map[string]float64 {
		return map[string]float64{"claims": float64(len(fig.Notes) - 1)}
	})
}

// --- Supporting micro-benchmarks (real wall-clock measurements) ---

// mappingSink keeps the mapping benchmarks' results observable so the
// loop bodies cannot be dead-code-eliminated.
var mappingSink int

// mappingDecomps builds the Figure 3-style writer/reader decompositions
// of a 4096² global for an m-writer, n-reader exchange.
func mappingDecomps(b *testing.B, m, n int) (writers, readers *ndarray.Decomposition) {
	b.Helper()
	shape := []int64{4096, 4096}
	writers, err := ndarray.BlockDecompose(shape, ndarray.FactorGrid(m, 2))
	if err != nil {
		b.Fatal(err)
	}
	readers, err = ndarray.BlockDecompose(shape, ndarray.FactorGrid(n, 2))
	if err != nil {
		b.Fatal(err)
	}
	return writers, readers
}

// benchSweepMapping is the headline mapping benchmark body: per
// iteration it invalidates and rebuilds the reader decomposition's
// interval index (charging the one-time build cost to every iteration)
// and then maps every writer box through an arena-reused query — the
// runtime's actual O(actual overlaps) path.
func benchSweepMapping(m, n int) func(*testing.B) {
	return func(b *testing.B) {
		writers, readers := mappingDecomps(b, m, n)
		var arena []ndarray.OverlapTarget
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			readers.InvalidateIndex()
			idx := readers.Index()
			total := 0
			for w := range writers.Boxes {
				arena = idx.AppendOverlaps(arena, writers.Boxes[w])
				total += len(arena)
			}
			mappingSink += total
		}
	}
}

// benchAllPairsMapping is the seed's all-pairs Intersect walk, kept as
// the side-by-side baseline the sweep's speedup is measured against.
func benchAllPairsMapping(m, n int) func(*testing.B) {
	return func(b *testing.B) {
		writers, readers := mappingDecomps(b, m, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			total := 0
			for w := range writers.Boxes {
				total += len(ndarray.Overlaps(writers.Boxes[w], readers))
			}
			mappingSink += total
		}
	}
}

// BenchmarkRedistributionMapping measures the MxN overlap computation for
// a Figure 3-style exchange at production-like scales: the headline
// sub-benchmarks run the interval-index sweep, each with an /allpairs
// sibling running the seed's all-pairs walk over the same decompositions.
func BenchmarkRedistributionMapping(b *testing.B) {
	for _, scale := range []struct{ m, n int }{{64, 4}, {512, 16}, {2048, 64}} {
		name := fmt.Sprintf("%dx%d", scale.m, scale.n)
		b.Run(name, benchSweepMapping(scale.m, scale.n))
		b.Run(name+"/allpairs", benchAllPairsMapping(scale.m, scale.n))
	}
}

// BenchmarkPackUnpack measures the strided pack/unpack path that every
// global-array byte crosses, over the dimensionalities the paper's
// workloads use (2-D GTS planes, 3-D S3D species arrays) plus a 4-D
// stress shape with short innermost rows.
func BenchmarkPackUnpack(b *testing.B) {
	cases := []struct {
		name   string
		src    ndarray.Box
		region ndarray.Box
	}{
		{"2D", ndarray.BoxFromShape([]int64{512, 512}),
			ndarray.NewBox([]int64{128, 128}, []int64{384, 384})},
		{"3D", ndarray.BoxFromShape([]int64{64, 128, 128}),
			ndarray.NewBox([]int64{16, 32, 32}, []int64{48, 96, 96})},
		{"3D/full-rows", ndarray.BoxFromShape([]int64{64, 128, 128}),
			ndarray.NewBox([]int64{16, 0, 0}, []int64{48, 128, 128})},
		{"4D", ndarray.BoxFromShape([]int64{16, 16, 64, 24}),
			ndarray.NewBox([]int64{4, 4, 8, 4}, []int64{12, 12, 56, 20})},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			buf := make([]byte, tc.src.NumElements()*8)
			dst := make([]byte, tc.region.NumElements()*8)
			var packed []byte
			b.SetBytes(tc.region.NumElements() * 8)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				packed, err = ndarray.Pack(packed, buf, tc.src, tc.region, 8)
				if err != nil {
					b.Fatal(err)
				}
				if err := ndarray.Unpack(dst, packed, tc.region, tc.region, 8); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRedistPlanSteadyState models the steady state of the M×N data
// path after the first step: redistribution plans are cached (built once,
// outside the timed loop) and payload/assembly buffers cycle through a
// pool, so a whole step of pack + unpack should run without allocating.
func BenchmarkRedistPlanSteadyState(b *testing.B) {
	const elemSize = 8
	shape := []int64{1024, 1024}
	writers, err := ndarray.BlockDecompose(shape, ndarray.FactorGrid(4, 2))
	if err != nil {
		b.Fatal(err)
	}
	readers, err := ndarray.BlockDecompose(shape, ndarray.FactorGrid(2, 2))
	if err != nil {
		b.Fatal(err)
	}

	// Build the cached plans once, exactly as the writer/reader groups do
	// on the first step of a run with stable decompositions.
	type piece struct {
		pack   *ndarray.Plan // writer box -> packed payload
		unpack *ndarray.Plan // packed payload -> reader assembly
		writer int
		reader int
	}
	var pieces []piece
	var stepBytes int64
	for w := range writers.Boxes {
		for r := range readers.Boxes {
			ov, ok := writers.Boxes[w].Intersect(readers.Boxes[r])
			if !ok {
				continue
			}
			pp, err := ndarray.NewPackPlan(writers.Boxes[w], ov, elemSize)
			if err != nil {
				b.Fatal(err)
			}
			up, err := ndarray.NewPlan(readers.Boxes[r], ov, ov, elemSize)
			if err != nil {
				b.Fatal(err)
			}
			pieces = append(pieces, piece{pack: pp, unpack: up, writer: w, reader: r})
			stepBytes += pp.Bytes()
		}
	}

	src := make([][]byte, len(writers.Boxes))
	for w, box := range writers.Boxes {
		src[w] = make([]byte, box.NumElements()*elemSize)
	}
	asm := make([][]byte, len(readers.Boxes))
	for r, box := range readers.Boxes {
		asm[r] = make([]byte, box.NumElements()*elemSize)
	}

	pool := shm.NewBufferPool(0)
	// Warm the pool so the timed loop only ever hits the free lists.
	warm := make([][]byte, len(pieces))
	for i, p := range pieces {
		buf, err := pool.Get(int(p.pack.Bytes()))
		if err != nil {
			b.Fatal(err)
		}
		warm[i] = buf
	}
	for _, buf := range warm {
		pool.Put(buf)
	}

	b.SetBytes(stepBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pieces {
			payload, err := pool.Get(int(p.pack.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			if err := p.pack.Execute(payload, src[p.writer]); err != nil {
				b.Fatal(err)
			}
			if err := p.unpack.Execute(asm[p.reader], payload); err != nil {
				b.Fatal(err)
			}
			pool.Put(payload)
		}
	}
}

// BenchmarkRegistrationCacheHit measures the registration cache's
// fast path (the hit that Figure 4's curves amortize to zero).
func BenchmarkRegistrationCacheHit(b *testing.B) {
	fab := rdma.NewFabric(machine.Titan(2).Net)
	ep, err := fab.Attach("bench", 0)
	if err != nil {
		b.Fatal(err)
	}
	cache := rdma.NewRegCache(ep, 0)
	r, _, err := cache.Acquire(1 << 20)
	if err != nil {
		b.Fatal(err)
	}
	cache.Release(r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, _, err := cache.Acquire(1 << 20)
		if err != nil {
			b.Fatal(err)
		}
		cache.Release(r)
	}
}

// BenchmarkDCPluginPipeline measures a full conditioning chain (select +
// bounding box) over a 1 MB particle payload.
func BenchmarkDCPluginPipeline(b *testing.B) {
	sel, err := dcplugin.SelectRangePlugin(7, 3, 0.2, 0.8).Filter()
	if err != nil {
		b.Fatal(err)
	}
	bbox, err := dcplugin.BoundingBoxPlugin().Filter()
	if err != nil {
		b.Fatal(err)
	}
	data := make([]float64, 7*18000) // ~1 MB
	for i := range data {
		data[i] = float64(i%100) / 100
	}
	payload := dcplugin.FloatsToBytes(data)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e1, err := sel(eventFor(payload))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := bbox(e1); err != nil {
			b.Fatal(err)
		}
	}
}

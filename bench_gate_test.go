//go:build !race

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strings"
	"testing"
)

// TestRedistMappingBudget is the CI regression gate for the M×N mapping
// fast path: every headline BenchmarkRedistributionMapping/<MxN> entry
// recorded in BENCH_redist.json is re-measured via testing.Benchmark and
// must stay within 20% of its recorded ns/op and allocs/op. The
// /allpairs siblings are the measurement baseline, not a budget — they
// are skipped, as are the pack/steady-state entries gated by their own
// numbers being archived. Excluded under -race (instrumented builds time
// nothing meaningful); refresh budgets with `make bench`.
func TestRedistMappingBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark gate skipped in -short")
	}
	blob, err := os.ReadFile("BENCH_redist.json")
	if err != nil {
		t.Fatalf("BENCH_redist.json missing (run `make bench` to record): %v", err)
	}
	var entries []struct {
		Name   string  `json:"name"`
		Ns     float64 `json:"ns_per_op"`
		Allocs float64 `json:"allocs_per_op"`
	}
	if err := json.Unmarshal(blob, &entries); err != nil {
		t.Fatalf("BENCH_redist.json: %v", err)
	}

	const prefix = "BenchmarkRedistributionMapping/"
	gomaxprocs := regexp.MustCompile(`-\d+$`) // go appends -N to recorded names
	gated := 0
	for _, e := range entries {
		name := gomaxprocs.ReplaceAllString(e.Name, "")
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		scale := strings.TrimPrefix(name, prefix)
		if strings.Contains(scale, "/") {
			continue // /allpairs baseline: measured, never budgeted
		}
		var m, n int
		if _, err := fmt.Sscanf(scale, "%dx%d", &m, &n); err != nil || m <= 0 || n <= 0 {
			t.Fatalf("unparseable scale %q in %q", scale, e.Name)
		}
		if e.Ns <= 0 {
			t.Fatalf("entry %q has no ns_per_op budget", e.Name)
		}
		gated++
		res := testing.Benchmark(benchSweepMapping(m, n))
		ns := float64(res.NsPerOp())
		allocs := float64(res.AllocsPerOp())
		t.Logf("%s: %.0f ns/op (budget %.0f), %.0f allocs/op (budget %.0f)",
			scale, ns, e.Ns, allocs, e.Allocs)
		if ns > e.Ns*1.2 {
			t.Errorf("%s: %.0f ns/op regresses >20%% over recorded %.0f (refresh with `make bench` if intended)",
				scale, ns, e.Ns)
		}
		if allocs > e.Allocs*1.2 {
			t.Errorf("%s: %.0f allocs/op regresses >20%% over recorded %.0f",
				scale, allocs, e.Allocs)
		}
	}
	if gated == 0 {
		t.Fatal("BENCH_redist.json holds no BenchmarkRedistributionMapping entries to gate")
	}
}
